"""Israeli-Itai randomized maximal matching [35] (O(log n) rounds).

The classical two-step proposal protocol, one of the PRAM algorithms the
paper's introduction cites as the O(log n) randomized yardstick:

1. every non-isolated node picks one incident edge uniformly at random
   ("proposal");
2. an edge proposed from both sides, or proposed by one side and accepted
   by the other (each node accepts one incoming proposal at random), joins
   a candidate set; conflicts at shared endpoints are broken by coin flips
   (here: by keeping the lexicographically smallest winning edge per node,
   applied to a random permutation -- same distribution, simpler code).

Matched nodes are removed; in expectation a constant fraction of edges
disappears per round.

The CSR backend (default) replaces the per-iteration rebuild with an
alive-edge mask plus the same amortized compaction the Luby solvers use,
and resolves each node's random proposal with the
:func:`~repro.graphs.kernels.alive_arc_select` kernel, whose arc order
matches the rebuilt graph's CSR order -- so both backends consume the
identical RNG stream and return the identical matching.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.kernels import alive_arc_select, alive_edge_degrees, resolve_backend
from .luby import BaselineResult, _maybe_compact_flagged

__all__ = ["israeli_itai_matching"]


def israeli_itai_matching(
    g: Graph,
    seed: int,
    *,
    max_iterations: int = 10_000,
    backend: str | None = None,
) -> BaselineResult:
    if resolve_backend(backend) == "legacy":
        return _israeli_itai_legacy(g, seed, max_iterations)
    rng = np.random.default_rng(seed)
    cur = g
    alive_e = np.ones(cur.m, dtype=bool)
    alive_ids = np.nonzero(alive_e)[0]
    pairs: list[np.ndarray] = []
    trace: list[int] = []
    it = 0
    while alive_ids.size > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("Israeli-Itai failed to converge")
        compacted, (cur, alive_e) = _maybe_compact_flagged(
            cur, alive_e, alive_ids.size
        )
        if compacted:
            alive_ids = np.nonzero(alive_e)[0]
        eu, ev = cur.edges_u, cur.edges_v
        trace.append(alive_ids.size)

        # Step 1: each live node proposes a uniform surviving incident edge.
        deg = alive_edge_degrees(cur, alive_e)
        live = np.nonzero(deg > 0)[0]
        proposal = np.full(g.n, -1, dtype=np.int64)
        offsets = (rng.random(live.size) * deg[live]).astype(np.int64)
        proposal[live] = alive_arc_select(cur, alive_e, live, offsets)

        # Step 2: edges proposed by both endpoints are strong candidates;
        # otherwise a node accepts one random incoming proposal.
        au, av = eu[alive_ids], ev[alive_ids]
        both = (proposal[au] == alive_ids) & (proposal[av] == alive_ids)
        one_sided = (
            (proposal[au] == alive_ids) | (proposal[av] == alive_ids)
        ) & ~both
        cand = np.nonzero(both | one_sided)[0]
        if cand.size == 0:
            continue
        # Conflict resolution: random priority per candidate edge, each node
        # keeps its best candidate, edge wins if best at both ends.
        prio = rng.permutation(cand.size)
        best = np.full(g.n, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(best, au[cand], prio)
        np.minimum.at(best, av[cand], prio)
        win = (best[au[cand]] == prio) & (best[av[cand]] == prio)
        eids = alive_ids[cand[win]]
        if eids.size == 0:
            continue
        pairs.append(np.stack([eu[eids], ev[eids]], axis=1))
        kill = np.zeros(g.n, dtype=bool)
        kill[eu[eids]] = True
        kill[ev[eids]] = True
        alive_e &= ~(kill[eu] | kill[ev])
        alive_ids = np.nonzero(alive_e)[0]
    sol = (
        np.concatenate(pairs, axis=0) if pairs else np.empty((0, 2), dtype=np.int64)
    )
    return BaselineResult(
        solution=sol,
        iterations=it,
        rounds=2 * it,  # two communication steps per iteration
        edge_trace=tuple(trace),
        algorithm="israeli_itai",
    )


def _israeli_itai_legacy(g: Graph, seed: int, max_iterations: int) -> BaselineResult:
    rng = np.random.default_rng(seed)
    pairs: list[np.ndarray] = []
    cur = g
    trace: list[int] = []
    it = 0
    while cur.m > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("Israeli-Itai failed to converge")
        trace.append(cur.m)

        # Step 1: each live node proposes a uniform incident edge.
        deg = cur.degrees()
        live = np.nonzero(deg > 0)[0]
        proposal = np.full(g.n, -1, dtype=np.int64)
        offsets = (rng.random(live.size) * deg[live]).astype(np.int64)
        proposal[live] = cur.arc_edge_ids[cur.indptr[live] + offsets]

        # Step 2: edges proposed by both endpoints are strong candidates;
        # otherwise a node accepts one random incoming proposal.
        eu, ev = cur.edges_u, cur.edges_v
        both = (proposal[eu] == np.arange(cur.m)) & (
            proposal[ev] == np.arange(cur.m)
        )
        one_sided = (
            (proposal[eu] == np.arange(cur.m)) | (proposal[ev] == np.arange(cur.m))
        ) & ~both
        candidates = np.nonzero(both | one_sided)[0]
        if candidates.size == 0:
            continue
        # Conflict resolution: random priority per candidate edge, each node
        # keeps its best candidate, edge wins if best at both ends.
        prio = rng.permutation(candidates.size)
        best = np.full(g.n, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(best, eu[candidates], prio)
        np.minimum.at(best, ev[candidates], prio)
        win = (best[eu[candidates]] == prio) & (best[ev[candidates]] == prio)
        eids = candidates[win]
        if eids.size == 0:
            continue
        pairs.append(np.stack([eu[eids], ev[eids]], axis=1))
        kill = np.zeros(g.n, dtype=bool)
        kill[eu[eids]] = True
        kill[ev[eids]] = True
        cur = cur.remove_vertices(kill)
    sol = (
        np.concatenate(pairs, axis=0) if pairs else np.empty((0, 2), dtype=np.int64)
    )
    return BaselineResult(
        solution=sol,
        iterations=it,
        rounds=2 * it,
        edge_trace=tuple(trace),
        algorithm="israeli_itai",
    )
