"""Israeli-Itai randomized maximal matching [35] (O(log n) rounds).

The classical two-step proposal protocol, one of the PRAM algorithms the
paper's introduction cites as the O(log n) randomized yardstick:

1. every non-isolated node picks one incident edge uniformly at random
   ("proposal");
2. an edge proposed from both sides, or proposed by one side and accepted
   by the other (each node accepts one incoming proposal at random), joins
   a candidate set; conflicts at shared endpoints are broken by coin flips
   (here: by keeping the lexicographically smallest winning edge per node,
   applied to a random permutation -- same distribution, simpler code).

Matched nodes are removed; in expectation a constant fraction of edges
disappears per round.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from .luby import BaselineResult

__all__ = ["israeli_itai_matching"]


def israeli_itai_matching(
    g: Graph, seed: int, *, max_iterations: int = 10_000
) -> BaselineResult:
    rng = np.random.default_rng(seed)
    pairs: list[np.ndarray] = []
    cur = g
    trace: list[int] = []
    it = 0
    while cur.m > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("Israeli-Itai failed to converge")
        trace.append(cur.m)

        # Step 1: each live node proposes a uniform incident edge.
        deg = cur.degrees()
        live = np.nonzero(deg > 0)[0]
        proposal = np.full(g.n, -1, dtype=np.int64)
        offsets = (rng.random(live.size) * deg[live]).astype(np.int64)
        proposal[live] = cur.arc_edge_ids[cur.indptr[live] + offsets]

        # Step 2: edges proposed by both endpoints are strong candidates;
        # otherwise a node accepts one random incoming proposal.
        eu, ev = cur.edges_u, cur.edges_v
        both = (proposal[eu] == np.arange(cur.m)) & (
            proposal[ev] == np.arange(cur.m)
        )
        one_sided = (
            (proposal[eu] == np.arange(cur.m)) | (proposal[ev] == np.arange(cur.m))
        ) & ~both
        candidates = np.nonzero(both | one_sided)[0]
        if candidates.size == 0:
            continue
        # Conflict resolution: random priority per candidate edge, each node
        # keeps its best candidate, edge wins if best at both ends.
        prio = rng.permutation(candidates.size)
        best = np.full(g.n, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(best, eu[candidates], prio)
        np.minimum.at(best, ev[candidates], prio)
        win = (best[eu[candidates]] == prio) & (best[ev[candidates]] == prio)
        eids = candidates[win]
        if eids.size == 0:
            continue
        pairs.append(np.stack([eu[eids], ev[eids]], axis=1))
        kill = np.zeros(g.n, dtype=bool)
        kill[eu[eids]] = True
        kill[ev[eids]] = True
        cur = cur.remove_vertices(kill)
    sol = (
        np.concatenate(pairs, axis=0) if pairs else np.empty((0, 2), dtype=np.int64)
    )
    return BaselineResult(
        solution=sol,
        iterations=it,
        rounds=2 * it,  # two communication steps per iteration
        edge_trace=tuple(trace),
        algorithm="israeli_itai",
    )
