"""PRAM-style bit-by-bit derandomized Luby (the slow classical comparator).

Luby [44] / [45] derandomize the MIS algorithm on PRAM by fixing the
O(log n)-bit seed of each iteration *one bit at a time* with a global vote:
with B = Theta(log n) seed bits and O(log n) iterations this costs
Theta(log^2 n) rounds -- the kind of bound the paper's introduction contrasts
with (the best known PRAM deterministic algorithms are O(log^2.5 n) /
O~(log^2 n); our simplified voting scheme reproduces the
rounds-per-iteration = seed-bits structure).

The *choice* within each bit level here is the exact conditional expectation
over the two half-families (computed by enumeration over a small family, so
this baseline is only run on small inputs / small fields), making the output
deterministic and the progress guarantee genuine.  The point of the baseline
is the ROUND accounting: ``rounds = iterations * (seed_bits + 1)``, versus
O(1) rounds per iteration for the paper's algorithm.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..hashing.kwise import make_family
from .luby import BaselineResult

__all__ = ["pram_bitwise_derandomized_mis"]


def pram_bitwise_derandomized_mis(
    g: Graph, *, max_iterations: int = 10_000, min_q: int = 31
) -> BaselineResult:
    """Deterministic MIS, charging seed_bits rounds per Luby iteration."""
    family = make_family(universe=max(g.n, 2), k=2, min_q=min_q)
    if family.size > (1 << 22):
        raise ValueError(
            "bitwise-derandomized baseline enumerates the family; "
            f"{family.size} seeds is too many (use smaller inputs)"
        )
    ids = np.arange(g.n, dtype=np.int64)
    maxkey = np.uint64(2**63 - 1)
    stride = np.uint64(g.n + 1)
    in_mis = np.zeros(g.n, dtype=bool)
    removed = np.zeros(g.n, dtype=bool)
    cur = g
    trace: list[int] = []
    it = 0
    while cur.m > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("bitwise derandomized Luby failed to converge")
        trace.append(cur.m)
        iso = cur.isolated_mask() & ~removed
        in_mis |= iso
        removed |= iso

        live_edges_u, live_edges_v = cur.edges_u, cur.edges_v
        live = cur.degrees() > 0

        def removed_edges(seed: int) -> float:
            key = family.evaluate(seed, ids) * stride + ids.astype(np.uint64)
            nbr_min = np.full(g.n, maxkey, dtype=np.uint64)
            np.minimum.at(nbr_min, live_edges_u, key[live_edges_v])
            np.minimum.at(nbr_min, live_edges_v, key[live_edges_u])
            i_mask = live & (key < nbr_min)
            kill = i_mask | (cur.degrees_toward(i_mask) > 0)
            return float(
                np.count_nonzero(kill[live_edges_u] | kill[live_edges_v])
            )

        # Bit-by-bit prefix descent with exact conditional expectations.
        values = np.array([removed_edges(s) for s in range(family.size)])
        lo, hi = 0, family.size
        bits = max(1, (family.size - 1).bit_length())
        for level in range(bits - 1, -1, -1):
            width = 1 << level
            mid = min(lo + width, hi)
            left = values[lo:mid].mean() if mid > lo else -np.inf
            right = values[mid:hi].mean() if hi > mid else -np.inf
            if left >= right:
                hi = mid
            else:
                lo = mid
            if hi - lo <= 1:
                break
        seed = int(lo)

        key = family.evaluate(seed, ids) * stride + ids.astype(np.uint64)
        nbr_min = np.full(g.n, maxkey, dtype=np.uint64)
        np.minimum.at(nbr_min, live_edges_u, key[live_edges_v])
        np.minimum.at(nbr_min, live_edges_v, key[live_edges_u])
        i_mask = live & (key < nbr_min)
        dominated = cur.degrees_toward(i_mask) > 0
        kill = i_mask | dominated
        in_mis |= i_mask
        removed |= kill
        cur = cur.remove_vertices(kill)
    in_mis |= ~removed
    seed_bits = family.seed_bits
    return BaselineResult(
        solution=np.nonzero(in_mis)[0].astype(np.int64),
        iterations=it,
        rounds=it * (seed_bits + 1),
        edge_trace=tuple(trace),
        algorithm="pram_bitwise_derandomized",
    )
