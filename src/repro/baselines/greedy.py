"""Sequential greedy oracles (correctness references, not MPC algorithms).

Greedy MIS/matching by increasing node/edge id: the classical linear-time
constructions whose outputs are maximal by induction.  Used by the test
suite as independent ground truth and by benchmarks for solution-quality
comparisons (matching size, MIS size).

The opt-in ``backend="csr"`` kernels compute the *same* lexicographically-
first solutions by iterated local minima: a node (edge) is decided once its
id is smaller than every undecided neighbour's (every adjacent undecided
edge's), which is the classical parallel-greedy fixed point -- each round
settles all current id-local-minima at once with whole-array kernels.
Identical output to the sequential scan by induction on id; typically
O(log n) rounds of O(m) work on random graphs, but O(n) rounds on
adversarial id orderings like paths -- which is why, uniquely among the
backend-switched solvers, the sequential scan remains the default here.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.kernels import (
    neighbor_count_toward,
    neighbor_min,
    resolve_backend,
    segment_min,
)

__all__ = ["greedy_matching", "greedy_mis"]


def greedy_mis(g: Graph, *, backend: str | None = None) -> np.ndarray:
    """Lexicographically-first MIS; returns sorted node ids.

    Unlike the Luby-style solvers, the *sequential scan* stays the default
    here: the parallel local-minima kernel settles one node per round on
    adversarial id orderings (paths), degrading to O(n * m).  Pass
    ``backend="csr"`` explicitly to use the round-based kernel.
    """
    if backend is None or resolve_backend(backend) == "legacy":
        return _greedy_mis_legacy(g)
    ids = np.arange(g.n, dtype=np.int64)
    taken = np.zeros(g.n, dtype=bool)
    decided = np.zeros(g.n, dtype=bool)
    while not decided.all():
        nbr_min_id = neighbor_min(g, ids, exclude=decided, fill=np.int64(g.n))
        winners = ~decided & (ids < nbr_min_id)
        taken |= winners
        decided |= winners | (neighbor_count_toward(g, winners) > 0)
    return np.nonzero(taken)[0].astype(np.int64)


def _greedy_mis_legacy(g: Graph) -> np.ndarray:
    taken = np.zeros(g.n, dtype=bool)
    blocked = np.zeros(g.n, dtype=bool)
    for v in range(g.n):
        if blocked[v]:
            continue
        taken[v] = True
        blocked[v] = True
        blocked[g.neighbors(v)] = True
    return np.nonzero(taken)[0].astype(np.int64)


def greedy_matching(g: Graph, *, backend: str | None = None) -> np.ndarray:
    """Lexicographically-first maximal matching; returns (k, 2) pairs.

    Sequential by default for the same reason as :func:`greedy_mis`; pass
    ``backend="csr"`` explicitly for the round-based kernel.
    """
    if backend is None or resolve_backend(backend) == "legacy":
        return _greedy_matching_legacy(g)
    eids = np.arange(g.m, dtype=np.int64)
    alive = np.ones(g.m, dtype=bool)
    in_matching = np.zeros(g.m, dtype=bool)
    used = np.zeros(g.n, dtype=bool)
    eid_vals = np.empty(g.m, dtype=np.int64)
    while alive.any():
        np.copyto(eid_vals, eids)
        eid_vals[~alive] = g.m
        node_min = segment_min(eid_vals[g.arc_edge_ids], g.indptr, np.int64(g.m))
        winners = alive & (eids == node_min[g.edges_u]) & (eids == node_min[g.edges_v])
        in_matching |= winners
        used[g.edges_u[winners]] = True
        used[g.edges_v[winners]] = True
        alive &= ~(used[g.edges_u] | used[g.edges_v])
    chosen = np.nonzero(in_matching)[0]
    return np.stack([g.edges_u[chosen], g.edges_v[chosen]], axis=1)


def _greedy_matching_legacy(g: Graph) -> np.ndarray:
    used = np.zeros(g.n, dtype=bool)
    pairs: list[tuple[int, int]] = []
    for u, v in zip(g.edges_u.tolist(), g.edges_v.tolist()):
        if not used[u] and not used[v]:
            used[u] = True
            used[v] = True
            pairs.append((u, v))
    return (
        np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if pairs
        else np.empty((0, 2), dtype=np.int64)
    )
