"""Sequential greedy oracles (correctness references, not MPC algorithms).

Greedy MIS/matching by increasing node/edge id: the classical linear-time
constructions whose outputs are maximal by induction.  Used by the test
suite as independent ground truth and by benchmarks for solution-quality
comparisons (matching size, MIS size).
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph

__all__ = ["greedy_matching", "greedy_mis"]


def greedy_mis(g: Graph) -> np.ndarray:
    """Lexicographically-first MIS; returns sorted node ids."""
    taken = np.zeros(g.n, dtype=bool)
    blocked = np.zeros(g.n, dtype=bool)
    for v in range(g.n):
        if blocked[v]:
            continue
        taken[v] = True
        blocked[v] = True
        blocked[g.neighbors(v)] = True
    return np.nonzero(taken)[0].astype(np.int64)


def greedy_matching(g: Graph) -> np.ndarray:
    """Lexicographically-first maximal matching; returns (k, 2) pairs."""
    used = np.zeros(g.n, dtype=bool)
    pairs: list[tuple[int, int]] = []
    for u, v in zip(g.edges_u.tolist(), g.edges_v.tolist()):
        if not used[u] and not used[v]:
            used[u] = True
            used[v] = True
            pairs.append((u, v))
    return (
        np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if pairs
        else np.empty((0, 2), dtype=np.int64)
    )
