"""Ghaffari's randomized MIS [21] (simplified; O(log Delta) + tail).

The desire-level algorithm underlying the Censor-Hillel et al. [15]
derandomization that the paper compares against: each node maintains a
marking probability ``p_v`` (its *desire level*); per round every node marks
itself with probability ``p_v``; a marked node with no marked neighbour
joins the MIS.  Desire levels halve when the neighbourhood is "heavy"
(``sum_{u ~ v} p_u >= 2``) and double (capped at 1/2) otherwise.

Included as the randomized comparator for the CONGESTED CLIQUE benchmark
(T8): its round count is ``O(log Delta)`` until the graph shatters, after
which a clean-up finishes the remainder (here: the same loop runs until
done; the trace lets benches measure the two regimes).
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from .luby import BaselineResult

__all__ = ["ghaffari_mis"]


def ghaffari_mis(
    g: Graph, seed: int, *, max_iterations: int = 10_000
) -> BaselineResult:
    rng = np.random.default_rng(seed)
    p = np.full(g.n, 0.5)
    in_mis = np.zeros(g.n, dtype=bool)
    removed = np.zeros(g.n, dtype=bool)
    cur = g
    trace: list[int] = []
    it = 0
    while cur.m > 0:
        it += 1
        if it > max_iterations:
            raise RuntimeError("Ghaffari MIS failed to converge")
        trace.append(cur.m)
        iso = cur.isolated_mask() & ~removed
        in_mis |= iso
        removed |= iso

        live = cur.degrees() > 0
        # Effective desire of neighbours.
        nbr_desire = np.zeros(g.n)
        np.add.at(nbr_desire, cur.edges_u, p[cur.edges_v])
        np.add.at(nbr_desire, cur.edges_v, p[cur.edges_u])

        marked = live & (rng.random(g.n) < p)
        marked_nbr = np.zeros(g.n, dtype=bool)
        mu = marked[cur.edges_u]
        mv = marked[cur.edges_v]
        np.logical_or.at(marked_nbr, cur.edges_u, mv)
        np.logical_or.at(marked_nbr, cur.edges_v, mu)
        joins = marked & ~marked_nbr

        dominated = cur.degrees_toward(joins) > 0
        kill = joins | dominated
        in_mis |= joins
        removed |= kill
        cur = cur.remove_vertices(kill)

        # Desire-level update on surviving nodes.
        heavy = nbr_desire >= 2.0
        p = np.where(heavy, p / 2.0, np.minimum(2.0 * p, 0.5))
    in_mis |= ~removed
    return BaselineResult(
        solution=np.nonzero(in_mis)[0].astype(np.int64),
        iterations=it,
        rounds=it,
        edge_trace=tuple(trace),
        algorithm="ghaffari_mis",
    )
