"""Core algorithms: the paper's contribution (Sections 3, 4 and 5)."""

from .derived import (
    ColoringViaMISResult,
    RulingSetResult,
    VertexCoverResult,
    deterministic_coloring,
    deterministic_ruling_set,
    deterministic_vertex_cover,
    is_ruling_set,
    is_vertex_cover,
)
from .good_nodes import (
    GoodNodesMatching,
    GoodNodesMIS,
    degree_class_of,
    good_nodes_matching,
    good_nodes_mis,
)
from .lowdeg import lowdeg_maximal_matching, lowdeg_mis, phases_per_stage
from .luby_step import LubyStepInfo, luby_matching_step, luby_mis_step
from .matching import deterministic_maximal_matching
from .mis import deterministic_mis
from .params import Params
from .records import (
    IterationRecord,
    MatchingResult,
    MISResult,
    StageRecord,
    result_from_payload,
    result_to_payload,
)
from .sparsify_edges import EdgeSparsifyResult, sparsify_edges
from .sparsify_nodes import NodeSparsifyResult, sparsify_nodes

__all__ = [
    "ColoringViaMISResult",
    "EdgeSparsifyResult",
    "RulingSetResult",
    "VertexCoverResult",
    "deterministic_coloring",
    "deterministic_ruling_set",
    "deterministic_vertex_cover",
    "is_ruling_set",
    "is_vertex_cover",
    "GoodNodesMIS",
    "GoodNodesMatching",
    "IterationRecord",
    "LubyStepInfo",
    "MISResult",
    "MatchingResult",
    "NodeSparsifyResult",
    "Params",
    "StageRecord",
    "degree_class_of",
    "deterministic_maximal_matching",
    "deterministic_mis",
    "good_nodes_matching",
    "lowdeg_maximal_matching",
    "lowdeg_mis",
    "phases_per_stage",
    "good_nodes_mis",
    "luby_matching_step",
    "luby_mis_step",
    "result_from_payload",
    "result_to_payload",
    "sparsify_edges",
    "sparsify_nodes",
]
