"""Section 5: MIS and matching in ``O(log Delta + log log n)`` MPC rounds.

For ``Delta <= n^{delta}`` the paper avoids sparsification entirely and
instead compresses Luby phases:

1. **Preprocessing** (``O(log log n)`` rounds): compute an ``O(Delta^4)``
   coloring ``chi`` of ``G^2`` with Linial's algorithm (``O(log* n)``
   rounds), and gather the ``r = 2 ell``-hop neighbourhood of every node
   (``O(log r) = O(log log n)`` rounds by doubling), where
   ``ell = Theta(delta log_Delta n)`` is the number of phases per stage.
2. **Stages** (``O(1)`` rounds each): z-values come from a pairwise family
   ``H*`` over *colors*, so one phase needs an ``O(log Delta)``-bit seed and
   a whole stage's seed sequence fits on one machine.  Every node can replay
   all ``ell`` phases of a stage locally from its ``r``-hop ball, so the
   stage's seeds are selected with one aggregate/broadcast per stage.

Total: ``O(log n) / ell = O(log Delta)`` stages after ``O(log log n)``
preprocessing.  Maximal matching reduces to MIS on the line graph
(``Delta(L(G)) <= 2 Delta - 2`` stays in the regime).

Fidelity note: the paper enumerates all ``|H*|^ell`` seed sequences of a
stage; we select the stage's ``ell`` seeds greedily (deterministic scan per
phase over ``H*``), which achieves the same per-phase progress guarantee --
the existence argument is per-phase -- and the identical round accounting
(phase searches are stage-local computation; see DESIGN.md).
"""

from __future__ import annotations

import math

import numpy as np

from ..derand.strategies import resolve_seed_backend, select_seed_batch
from ..graphs.coloring import distance2_coloring
from ..graphs.graph import Graph
from ..graphs.kernels import segment_any_block_fn, segment_min_block_fn
from ..graphs.linegraph import line_graph
from ..graphs.power import ball_sizes
from ..hashing.families import make_color_family
from ..mpc.context import MPCContext
from ..obs import trace as _obs
from .params import Params
from .records import IterationRecord, MatchingResult, MISResult

__all__ = ["lowdeg_maximal_matching", "lowdeg_mis", "phases_per_stage"]


def phases_per_stage(n: int, max_degree: int, params: Params) -> int:
    """``ell = Theta(delta log_Delta n)``, at least 1."""
    d = max(max_degree, 2)
    ell = int(params.delta_value * math.log(max(n, 2)) / math.log(d))
    return max(1, ell)


def _a_set_weight(g: Graph):
    """The Section-4 ``A`` set on the current graph plus its degree weight.

    ``A = {v : sum_{u ~ v} 1/d(u) >= 1/3}``; Corollary 15 gives
    ``sum_{v in A} d(v) >= |E| / 2``.
    """
    deg = g.degrees().astype(np.float64)
    inv = np.zeros(g.n, dtype=np.float64)
    nz = deg > 0
    inv[nz] = 1.0 / deg[nz]
    acc = np.zeros(g.n, dtype=np.float64)
    if g.m:
        np.add.at(acc, g.edges_u, inv[g.edges_v])
        np.add.at(acc, g.edges_v, inv[g.edges_u])
    a_mask = (acc >= 1.0 / 3.0 - 1e-12) & (deg > 0)
    return a_mask, float(deg[a_mask].sum())


def lowdeg_mis(
    graph: Graph,
    params: Params | None = None,
    *,
    ctx: MPCContext | None = None,
    max_phases: int | None = None,
) -> MISResult:
    """Deterministic MIS in ``O(log Delta + log log n)`` charged rounds."""
    params = params or Params()
    ctx = ctx or MPCContext(
        n=graph.n,
        m=graph.m,
        eps=params.eps,
        space_factor=params.space_factor,
        total_factor=params.total_factor,
    )
    fidelity: list[str] = []
    records: list[IterationRecord] = []
    n = graph.n
    delta_max = graph.max_degree()

    if graph.m == 0:
        return MISResult(
            independent_set=np.arange(n, dtype=np.int64),
            iterations=0,
            rounds=0,
            rounds_by_category={"total": 0},
            max_machine_words=0,
            space_limit=ctx.S,
            records=tuple(),
            stages_compressed=0,
            num_colors=0,
        )

    # ---------------- preprocessing (O(log log n) rounds) ---------------- #
    coloring = distance2_coloring(graph)
    # Linial rounds exchange current colors over every edge (both directions).
    ctx.ledger.charge(
        "coloring",
        max(1, coloring.iterations),
        words=2 * graph.m * max(1, coloring.iterations),
    )
    family = make_color_family(coloring.num_colors)
    colors = coloring.colors.astype(np.int64)

    ell = phases_per_stage(n, delta_max, params)
    # Shrink ell until the r = 2*ell-hop balls fit in machine space.
    while ell > 1:
        sizes = ball_sizes(graph, 2 * ell)
        if int(sizes.max(initial=0)) + 1 <= ctx.S:
            break
        ell -= 1
    r = 2 * ell
    sizes = ball_sizes(graph, r)
    ctx.space.observe_loads(sizes + 1, "r-hop ball gather")
    # Volume: every ball member is one word shipped to the node's machine.
    ctx.charge_gather_rhop(r, "preprocess_gather", words=int(sizes.sum()))

    # ---------------- phases grouped into stages ------------------------- #
    in_mis = np.zeros(n, dtype=bool)
    removed = np.zeros(n, dtype=bool)
    g = graph
    phase = 0
    cap = max_phases if max_phases is not None else 64 + 16 * max(
        1, int(np.ceil(np.log2(max(graph.m, 2))))
    )
    stride = np.uint64(n + 1)

    while g.m > 0:
        phase += 1
        if phase > cap:
            raise RuntimeError(
                f"low-degree MIS failed to converge within {cap} phases"
            )
        t_phase = _obs.clock() if _obs._TRACING else 0.0
        edges_before = g.m

        iso = g.isolated_mask() & ~removed
        in_mis |= iso
        removed |= iso

        a_mask, w_a = _a_set_weight(g)
        deg = g.degrees().astype(np.float64)
        live = np.nonzero(deg > 0)[0].astype(np.int64)
        nbr_min_fn = segment_min_block_fn(g.indices, g.indptr, n)
        nbr_any_fn = segment_any_block_fn(g.indices, g.indptr, n)
        # Color keys fit 32 bits (z < q = O(Delta^4), stride = n + 1): half
        # the traffic of the generic uint64 key path.
        key_dtype = (
            np.uint32 if family.range * (n + 1) + n < 2**32 else np.uint64
        )
        stride_k = key_dtype(stride)
        maxkey_k = key_dtype(np.iinfo(key_dtype).max)
        live_k = live.astype(key_dtype)
        # The objective is an integer total of degrees over A; summing via
        # an integer mat-vec is exact (== the float sum the records report).
        deg_sel = (g.degrees() * a_mask).astype(np.int64)

        def compute_i_masks(seeds: np.ndarray) -> np.ndarray:
            """bool[S, n]: the phase-``h`` candidate set per trial seed.

            One batched color-hash evaluation plus a block neighbour-min
            replaces the per-seed ``np.minimum.at`` scatter; rows reduce
            independently, so each row is bit-identical to a single-seed
            evaluation.
            """
            z = family.evaluate_colors_batch(seeds, colors[live]).astype(key_dtype)
            key_full = np.full((z.shape[0], n), maxkey_k, dtype=key_dtype)
            key_full[:, live] = z * stride_k + live_k[None, :]
            nbr_min = nbr_min_fn(key_full, maxkey_k)
            i_mask = np.zeros(key_full.shape, dtype=bool)
            i_mask[:, live] = key_full[:, live] < nbr_min[:, live]
            return i_mask

        if resolve_seed_backend(params.seed_backend) == "jit":
            # Fused select/reduce: per seed, three O(n + arcs) compiled
            # passes instead of the (S, n) key grid -- bit-identical
            # objective values (integer keys, order-free reductions).
            from ..derand.seed_jit import make_lowdeg_objective

            batch_objective = make_lowdeg_objective(
                family, colors[live], live, g.indices, g.indptr, deg_sel, n
            )
        else:

            def batch_objective(seeds: np.ndarray) -> np.ndarray:
                i_mask = compute_i_masks(seeds)
                covered = nbr_any_fn(i_mask)
                return ((covered | i_mask) @ deg_sel).astype(np.float64)

        target = params.mis_target(w_a)
        # Phase-disjoint offsets into the canonical scan order; the scan's
        # own wrap-around covers [1, start) when a late phase starts deep
        # in the family, so no region is silently lost.
        start = 1 + ((phase - 1) * params.max_scan_trials) % max(
            1, family.size - 1
        )
        sel = select_seed_batch(
            family.size,
            batch_objective,
            strategy="scan" if params.strategy != "best_of" else "best_of",
            target=target,
            max_trials=params.max_scan_trials,
            best_of_k=params.best_of_k,
            start=start,
            backend=params.seed_backend,
            chunk_size=params.seed_chunk,
        )
        if not sel.satisfied:
            fidelity.append(
                f"lowdeg phase {phase}: target {target:.2f} not met "
                f"(best {sel.value:.2f})"
            )

        i_mask = compute_i_masks(np.array([sel.seed], dtype=np.int64))[0]
        dominated = g.degrees_toward(i_mask) > 0
        kill = i_mask | dominated
        in_mis |= i_mask
        removed |= kill
        g = g.remove_vertices(kill)

        records.append(
            IterationRecord(
                iteration=phase,
                edges_before=edges_before,
                edges_after=g.m,
                i_star=1,
                num_good_nodes=int(a_mask.sum()),
                weight_b=w_a,
                stages=tuple(),
                selection_value=sel.value,
                selection_target=target,
                selection_trials=sel.trials,
                selection_satisfied=sel.satisfied,
                seed_bits=family.seed_bits,
                nodes_removed=int(kill.sum()),
            )
        )
        if _obs._TRACING:
            _obs.record_span(
                "lowdeg.phase",
                t_phase,
                {
                    "phase": phase,
                    "edges_before": edges_before,
                    "edges_after": g.m,
                    "seed": sel.seed,
                    "trials": sel.trials,
                    "satisfied": sel.satisfied,
                    "nodes_removed": int(kill.sum()),
                },
            )

    in_mis |= ~removed
    # Stage accounting: each block of ell phases costs O(1) rounds (one
    # aggregate to compare candidate stage outcomes + one broadcast).
    stages = max(1, math.ceil(phase / ell))
    for _ in range(stages):
        ctx.charge_aggregate("stage")
        ctx.charge_broadcast("stage")

    return MISResult(
        independent_set=np.nonzero(in_mis)[0].astype(np.int64),
        iterations=phase,
        rounds=ctx.rounds,
        rounds_by_category=ctx.ledger.snapshot(),
        max_machine_words=ctx.space.max_machine_words,
        space_limit=ctx.S,
        words_moved=ctx.words_moved,
        records=tuple(records),
        fidelity_events=tuple(fidelity),
        stages_compressed=stages,
        num_colors=coloring.num_colors,
    )


def lowdeg_maximal_matching(
    graph: Graph,
    params: Params | None = None,
    *,
    ctx: MPCContext | None = None,
) -> MatchingResult:
    """Maximal matching via MIS on the line graph (Section 5, last para)."""
    params = params or Params()
    ctx = ctx or MPCContext(
        n=graph.n,
        m=graph.m,
        eps=params.eps,
        space_factor=params.space_factor,
        total_factor=params.total_factor,
    )
    if graph.m == 0:
        return MatchingResult(
            pairs=np.empty((0, 2), dtype=np.int64),
            iterations=0,
            rounds=0,
            rounds_by_category={"total": 0},
            max_machine_words=0,
            space_limit=ctx.S,
            records=tuple(),
        )
    lg = line_graph(graph)
    # Build L(G) by sorting both arc orientations by endpoint.
    ctx.charge_sort("line_graph", words=2 * graph.m)
    sub = lowdeg_mis(lg, params)
    matched_eids = sub.independent_set
    pairs = np.stack(
        [graph.edges_u[matched_eids], graph.edges_v[matched_eids]], axis=1
    )
    # Merge the sub-run's accounting into ours (words once, not per category).
    merged_words = False
    for cat, amount in sub.rounds_by_category.items():
        if cat != "total":
            ctx.ledger.charge(
                cat, amount, words=0 if merged_words else sub.words_moved
            )
            merged_words = True
    return MatchingResult(
        pairs=pairs,
        iterations=sub.iterations,
        rounds=ctx.rounds,
        rounds_by_category=ctx.ledger.snapshot(),
        max_machine_words=max(ctx.space.max_machine_words, sub.max_machine_words),
        space_limit=ctx.S,
        words_moved=ctx.words_moved,
        records=sub.records,
        fidelity_events=sub.fidelity_events,
    )
