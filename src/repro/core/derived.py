"""Derived problems: classical corollaries of deterministic MIS / matching.

The paper's introduction motivates MIS and maximal matching as *benchmark*
primitives precisely because other problems reduce to them.  This module
packages the two standard reductions, inheriting the deterministic MPC
round/space guarantees of Theorem 1:

* **Minimum vertex cover, 2-approximation** — the endpoints of any maximal
  matching form a vertex cover of size at most twice the optimum (each
  matched edge needs one cover vertex, and OPT must pick at least one
  endpoint per matched edge since the matching is a set of disjoint edges).

* **(Δ+1)-coloring** — the classical reduction (Luby [44], Linial [42]): an
  MIS of the product graph ``G × K_{Δ+1}`` (nodes ``(v, c)``, edges between
  copies of adjacent nodes with the same color and between all copies of
  the same node) assigns every node exactly one color, and adjacent nodes
  never share one.  The product graph has ``n (Δ+1)`` nodes and
  ``m (Δ+1) + n C(Δ+1, 2)`` edges; its maximum degree is ``2 Δ``, so for a
  low-degree input the Section-5 algorithm applies to the product as well.

* **2-ruling set** — one MIS call on the square graph ``G²`` (edges between
  vertices at distance ``<= 2``; cf. Pai–Pemmaraju's deterministic ruling
  sets in MPC): an MIS of ``G²`` is independent at distance ``>= 3`` in
  ``G`` and, by maximality in ``G²``, leaves every vertex within distance
  2 of the set.  ``G²`` has maximum degree ``<= Δ²``, so the low-degree
  path applies whenever ``Δ² `` fits the Section-5 regime — exactly the
  seed-compression argument the paper makes for distance-2 coloring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..graphs.power import square_graph
from .api import maximal_independent_set, maximal_matching
from .params import Params
from .records import MISResult, MatchingResult

__all__ = [
    "ColoringViaMISResult",
    "RulingSetResult",
    "VertexCoverResult",
    "deterministic_coloring",
    "deterministic_ruling_set",
    "deterministic_vertex_cover",
    "is_ruling_set",
]


@dataclass(frozen=True)
class VertexCoverResult:
    """A 2-approximate minimum vertex cover (Theorem 1 costs)."""

    cover: np.ndarray  # sorted node ids
    matching: MatchingResult  # the underlying maximal matching

    @property
    def size(self) -> int:
        return int(self.cover.size)

    @property
    def rounds(self) -> int:
        return self.matching.rounds

    def lower_bound(self) -> int:
        """|M| <= OPT: certified approximation ratio |cover| / |M| <= 2."""
        return int(self.matching.pairs.shape[0])


def deterministic_vertex_cover(
    graph: Graph, *, eps: float = 0.5, params: Params | None = None
) -> VertexCoverResult:
    """2-approximate minimum vertex cover via deterministic maximal matching."""
    mm = maximal_matching(graph, eps=eps, params=params)
    cover = np.unique(mm.pairs.ravel()) if mm.pairs.size else np.empty(
        0, dtype=np.int64
    )
    return VertexCoverResult(cover=cover, matching=mm)


def is_vertex_cover(g: Graph, cover: np.ndarray) -> bool:
    """Every edge has at least one endpoint in ``cover``."""
    mask = np.zeros(g.n, dtype=bool)
    if np.asarray(cover).size:
        mask[np.asarray(cover, dtype=np.int64)] = True
    if g.m == 0:
        return True
    return bool(np.all(mask[g.edges_u] | mask[g.edges_v]))


@dataclass(frozen=True)
class RulingSetResult:
    """A 2-ruling set: pairwise distance >= 3, every vertex within 2 hops."""

    ruling_set: np.ndarray  # sorted node ids
    mis: MISResult  # the MIS run on the square graph
    square_n: int
    square_m: int

    @property
    def size(self) -> int:
        return int(self.ruling_set.size)

    @property
    def rounds(self) -> int:
        return self.mis.rounds


def deterministic_ruling_set(
    graph: Graph, *, eps: float = 0.5, params: Params | None = None
) -> RulingSetResult:
    """2-ruling set via one deterministic MIS call on ``G²``.

    An independent set of ``G²`` has pairwise ``G``-distance ``>= 3``
    (any two vertices at distance ``<= 2`` are ``G²``-adjacent), and its
    maximality means every vertex is ``G²``-adjacent to the set, i.e.
    within ``G``-distance 2 — the (3, 2)-ruling-set guarantee.
    """
    sq = square_graph(graph)
    mis = maximal_independent_set(sq, eps=eps, params=params)
    return RulingSetResult(
        ruling_set=np.sort(mis.independent_set.astype(np.int64)),
        mis=mis,
        square_n=sq.n,
        square_m=sq.m,
    )


def is_ruling_set(g: Graph, nodes: np.ndarray) -> bool:
    """Verify the 2-ruling-set contract against ``g`` directly.

    Checks (a) no two chosen vertices are within distance 2 and (b) every
    vertex reaches a chosen one in at most 2 hops.
    """
    chosen = np.zeros(g.n, dtype=bool)
    sel = np.asarray(nodes, dtype=np.int64)
    if sel.size:
        chosen[sel] = True
    if g.n == 0:
        return True
    # within1[v]: v is chosen or adjacent to a chosen vertex
    within1 = chosen.copy()
    if g.m:
        np.logical_or.at(within1, g.edges_u, chosen[g.edges_v])
        np.logical_or.at(within1, g.edges_v, chosen[g.edges_u])
    within2 = within1.copy()
    if g.m:
        np.logical_or.at(within2, g.edges_u, within1[g.edges_v])
        np.logical_or.at(within2, g.edges_v, within1[g.edges_u])
    if not bool(within2.all()):
        return False
    # Independence at distance >= 3.  A chosen pair at distance 1 is an
    # edge with both endpoints chosen; a chosen pair at distance 2 shares a
    # middle vertex, which then has two distinct chosen neighbours.  So the
    # set is distance->=3 independent iff no chosen-chosen edge exists and
    # no vertex counts two chosen neighbours.
    if g.m:
        if bool(np.any(chosen[g.edges_u] & chosen[g.edges_v])):
            return False
        chosen_nbrs = np.zeros(g.n, dtype=np.int64)
        np.add.at(chosen_nbrs, g.edges_u, chosen[g.edges_v].astype(np.int64))
        np.add.at(chosen_nbrs, g.edges_v, chosen[g.edges_u].astype(np.int64))
        if bool(np.any(chosen_nbrs >= 2)):
            return False
    return True


@dataclass(frozen=True)
class ColoringViaMISResult:
    """A proper (Δ+1)-coloring obtained through the MIS reduction."""

    colors: np.ndarray  # int64[n] in [0, Delta + 1)
    num_colors: int
    mis: MISResult  # the MIS run on the product graph
    product_n: int
    product_m: int

    @property
    def rounds(self) -> int:
        return self.mis.rounds


def _product_graph(g: Graph, k: int) -> Graph:
    """``G x K_k``: node ``(v, c)`` is id ``v * k + c``.

    Edges: {(v,c),(v,c')} for c != c' (each node picks one color) and
    {(u,c),(v,c)} for {u,v} in E (adjacent nodes cannot share a color).
    """
    n, m = g.n, g.m
    # Same-node cliques.
    cs = np.triu_indices(k, k=1)
    base = np.arange(n, dtype=np.int64)[:, None] * k
    clique_u = (base + cs[0][None, :]).ravel()
    clique_v = (base + cs[1][None, :]).ravel()
    # Cross edges per color.
    col = np.arange(k, dtype=np.int64)
    cross_u = (g.edges_u[:, None] * k + col[None, :]).ravel()
    cross_v = (g.edges_v[:, None] * k + col[None, :]).ravel()
    edges = np.stack(
        [np.concatenate([clique_u, cross_u]), np.concatenate([clique_v, cross_v])],
        axis=1,
    )
    return Graph.from_edges(n * k, edges)


def deterministic_coloring(
    graph: Graph,
    *,
    eps: float = 0.5,
    params: Params | None = None,
    num_colors: int | None = None,
) -> ColoringViaMISResult:
    """Proper coloring with ``Delta + 1`` colors via MIS on ``G x K_{Δ+1}``.

    Any MIS of the product graph hits every node-clique exactly once
    (at least once by maximality -- a completely unhit clique could accept
    any of its members, all of whose product-neighbours outside the clique
    are unhit copies... more precisely, maximality forces a chosen copy or
    a chosen conflicting neighbour copy *of the same color*; a standard
    argument shows every node receives exactly one color).
    """
    k = num_colors if num_colors is not None else graph.max_degree() + 1
    if k < 1:
        k = 1
    prod = _product_graph(graph, k)
    mis = maximal_independent_set(prod, eps=eps, params=params)
    colors = np.full(graph.n, -1, dtype=np.int64)
    for node_id in mis.independent_set.tolist():
        v, c = divmod(int(node_id), k)
        colors[v] = c
    if np.any(colors < 0):
        # With k = Delta + 1 this cannot happen (a node with all copies
        # unchosen and some color unused by neighbours contradicts
        # maximality); guard for caller-supplied smaller k.
        raise ValueError(
            f"{int((colors < 0).sum())} nodes uncolored; "
            f"k={k} colors insufficient for this graph"
        )
    return ColoringViaMISResult(
        colors=colors,
        num_colors=k,
        mis=mis,
        product_n=prod.n,
        product_m=prod.m,
    )
