"""Top-level dispatch (Theorem 1): pick the regime by maximum degree.

The paper runs the Section-5 algorithm when ``Delta <= n^{delta}`` and the
general ``O(log n)`` algorithm otherwise (the latter is ``O(log Delta)``
rounds in that regime because ``log Delta = Theta(log n)``).

At the finite sizes a simulation runs, ``n^{delta}`` is a very small number,
so a literal threshold would never select the low-degree path.  The
*operational* requirement behind the paper's threshold is that 2-hop (and
``r``-hop, after shrinking ``ell``) neighbourhoods fit in machine space; we
therefore dispatch on ``Delta^2 + 1 <= S`` by default (``paper_rule=True``
restores the literal ``Delta <= n^{delta}`` rule).  The low-degree driver
itself re-verifies ball sizes against ``S`` and shrinks ``ell`` as needed,
so the dispatch rule only affects which theorem's round bound applies.
"""

from __future__ import annotations

from ..graphs.graph import Graph
from .lowdeg import lowdeg_maximal_matching, lowdeg_mis
from .matching import deterministic_maximal_matching
from .mis import deterministic_mis
from .params import Params
from .records import MatchingResult, MISResult

__all__ = ["maximal_independent_set", "maximal_matching", "uses_lowdeg_path"]


def uses_lowdeg_path(
    graph: Graph, params: Params, *, paper_rule: bool = False, for_matching: bool = False
) -> bool:
    """True iff the Section-5 path will be taken for this input."""
    delta_max = graph.max_degree()
    if delta_max == 0:
        return True
    if paper_rule:
        return delta_max <= params.low_degree_threshold(graph.n)
    from ..mpc.context import MPCContext

    s = MPCContext(
        n=graph.n, m=graph.m, eps=params.eps, space_factor=params.space_factor
    ).S
    eff = 2 * delta_max - 2 if for_matching else delta_max  # line-graph degree
    return max(eff, 1) ** 2 + 1 <= s


def maximal_independent_set(
    graph: Graph,
    *,
    eps: float = 0.5,
    params: Params | None = None,
    force: str | None = None,
    paper_rule: bool = False,
    ctx=None,
) -> MISResult:
    """Deterministic MIS, ``O(log Delta + log log n)`` rounds (Theorem 1).

    ``force`` may be ``"general"`` or ``"lowdeg"`` to pin the code path.
    Passing a ``ctx`` (:class:`~repro.mpc.context.MPCContext`) lets callers
    own the round/space ledger.

    .. note:: Prefer the unified facade
       ``repro.api.solve(SolveRequest(problem="mis", model="simulated",
       graph=g))`` — it returns the same result inside a
       :class:`~repro.api.SolveResult` envelope (with the model snapshot and
       verification certificate attached).  This entry point stays as a
       bit-identical thin path for existing callers.
    """
    params = params or Params(eps=eps)
    if force == "general":
        return deterministic_mis(graph, params, ctx=ctx)
    if force == "lowdeg":
        return lowdeg_mis(graph, params, ctx=ctx)
    if force is not None:
        raise ValueError(f"unknown force={force!r}")
    if uses_lowdeg_path(graph, params, paper_rule=paper_rule):
        return lowdeg_mis(graph, params, ctx=ctx)
    return deterministic_mis(graph, params, ctx=ctx)


def maximal_matching(
    graph: Graph,
    *,
    eps: float = 0.5,
    params: Params | None = None,
    force: str | None = None,
    paper_rule: bool = False,
    ctx=None,
) -> MatchingResult:
    """Deterministic maximal matching (Theorem 1); see MIS dispatch.

    .. note:: Prefer ``repro.api.solve(SolveRequest(problem="matching",
       model="simulated", graph=g))``; this entry point stays as a
       bit-identical thin path for existing callers.
    """
    params = params or Params(eps=eps)
    if force == "general":
        return deterministic_maximal_matching(graph, params, ctx=ctx)
    if force == "lowdeg":
        return lowdeg_maximal_matching(graph, params, ctx=ctx)
    if force is not None:
        raise ValueError(f"unknown force={force!r}")
    if uses_lowdeg_path(graph, params, paper_rule=paper_rule, for_matching=True):
        return lowdeg_maximal_matching(graph, params, ctx=ctx)
    return deterministic_maximal_matching(graph, params, ctx=ctx)
