"""Run records: per-stage / per-iteration traces and result objects.

Everything a benchmark or test might want to inspect about a run is captured
here rather than printed: sparsification stage traces (the invariant
measurements behind Lemmas 10/11/17/18), per-iteration progress (the
Lemma 13/21 constants), seed-search effort, and the final solution plus the
model accounting (rounds by category, space high-water marks).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

__all__ = [
    "IterationRecord",
    "MISResult",
    "MatchingResult",
    "StageRecord",
    "result_from_payload",
    "result_to_payload",
]


@dataclass(frozen=True)
class StageRecord:
    """One sparsification stage (Section 3.2 / 4.2)."""

    stage: int  # j in 1..i-4 (0 = the trivial E* = E0 / Q' = Q0 case)
    kind: str  # "edges" | "nodes"
    items_before: int
    items_after: int
    sample_prob: float  # realised threshold probability (floor(p q) / q)
    num_machines: int
    max_load: int
    seed: int
    trials: int
    slack_kappa: float  # realised slack multiplier (paper nominal: n^{0.1 delta})
    escalations: int  # slack relaxations needed before an all-good seed
    all_good: bool
    # invariant (i): max over v of measured degree / implied bound (<= 1 when
    # all_good), plus measured decay vs the paper's ideal n^{-j delta}.
    degree_bound_ratio: float
    degree_decay_measured: float
    degree_decay_ideal: float
    # invariant (ii): min over v in B of retained weight / implied lower
    # bound (>= 1 when all_good), plus measured retention vs ideal.
    retention_bound_ratio: float
    retention_decay_measured: float
    retention_decay_ideal: float


@dataclass(frozen=True)
class IterationRecord:
    """One outer Luby iteration of Algorithm 2 / Algorithm 3."""

    iteration: int
    edges_before: int
    edges_after: int
    i_star: int
    num_good_nodes: int
    weight_b: float
    stages: tuple[StageRecord, ...]
    selection_value: float  # achieved objective sum_{v in N_h} d(v)
    selection_target: float
    selection_trials: int
    selection_satisfied: bool
    seed_bits: int
    nodes_removed: int

    @property
    def removed_fraction(self) -> float:
        if self.edges_before == 0:
            return 0.0
        return (self.edges_before - self.edges_after) / self.edges_before


@dataclass(frozen=True)
class MatchingResult:
    """Result of the deterministic maximal matching algorithm (Theorem 7)."""

    pairs: np.ndarray  # (k, 2) int64 matched endpoint pairs (original ids)
    iterations: int
    rounds: int
    rounds_by_category: dict[str, int]
    max_machine_words: int
    space_limit: int
    records: tuple[IterationRecord, ...] = field(repr=False)
    fidelity_events: tuple[str, ...] = ()
    words_moved: int = 0  # communication volume in O(log n)-bit words

    @property
    def matched_nodes(self) -> np.ndarray:
        return np.unique(self.pairs.ravel()) if self.pairs.size else np.empty(
            0, dtype=np.int64
        )

    def matching_mask(self, n: int) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        if self.pairs.size:
            mask[self.pairs.ravel()] = True
        return mask


@dataclass(frozen=True)
class MISResult:
    """Result of the deterministic MIS algorithm (Theorem 14)."""

    independent_set: np.ndarray  # int64 node ids (original ids)
    iterations: int
    rounds: int
    rounds_by_category: dict[str, int]
    max_machine_words: int
    space_limit: int
    records: tuple[IterationRecord, ...] = field(repr=False)
    fidelity_events: tuple[str, ...] = ()
    words_moved: int = 0  # communication volume in O(log n)-bit words
    stages_compressed: int = 0  # Section-5 runs: number of compressed stages
    num_colors: int = 0  # Section-5 runs: palette size of the G^2 coloring

    def mis_mask(self, n: int) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        if self.independent_set.size:
            mask[self.independent_set] = True
        return mask


# ---------------------------------------------------------------------- #
# Serialization (runtime cache / batch persistence)
#
# A result splits into a JSON-safe metadata dict (scalars, the full trace
# records, the round ledger) and a dict of numpy arrays (the solution), so
# the runtime cache can persist it as <key>.json + <key>.npz and rebuild a
# bit-identical result object in another process.
# ---------------------------------------------------------------------- #


def _plain(value):
    """Coerce numpy scalars / containers to JSON-native python values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def _stage_to_dict(s: StageRecord) -> dict:
    return {f.name: _plain(getattr(s, f.name)) for f in fields(StageRecord)}


def _iteration_to_dict(r: IterationRecord) -> dict:
    d = {
        f.name: _plain(getattr(r, f.name))
        for f in fields(IterationRecord)
        if f.name != "stages"
    }
    d["stages"] = [_stage_to_dict(s) for s in r.stages]
    return d


def _iteration_from_dict(d: dict) -> IterationRecord:
    d = dict(d)
    d["stages"] = tuple(StageRecord(**s) for s in d["stages"])
    return IterationRecord(**d)


def result_to_payload(
    result: MISResult | MatchingResult,
) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a result into ``(json_safe_meta, arrays)``.

    Inverse of :func:`result_from_payload`; ``json.dumps(meta)`` is
    guaranteed to succeed.
    """
    is_mis = isinstance(result, MISResult)
    meta = {
        "kind": "mis" if is_mis else "matching",
        "iterations": int(result.iterations),
        "rounds": int(result.rounds),
        "rounds_by_category": _plain(result.rounds_by_category),
        "max_machine_words": int(result.max_machine_words),
        "space_limit": int(result.space_limit),
        "words_moved": int(result.words_moved),
        "fidelity_events": [str(e) for e in result.fidelity_events],
        "records": [_iteration_to_dict(r) for r in result.records],
    }
    if is_mis:
        meta["stages_compressed"] = int(result.stages_compressed)
        meta["num_colors"] = int(result.num_colors)
        arrays = {"solution": np.asarray(result.independent_set, dtype=np.int64)}
    else:
        arrays = {
            "solution": np.asarray(result.pairs, dtype=np.int64).reshape(-1, 2)
        }
    return meta, arrays


def result_from_payload(
    meta: dict, arrays: dict[str, np.ndarray]
) -> MISResult | MatchingResult:
    """Rebuild a result object from :func:`result_to_payload` output."""
    kind = meta["kind"]
    common = dict(
        iterations=int(meta["iterations"]),
        rounds=int(meta["rounds"]),
        rounds_by_category={
            str(k): int(v) for k, v in meta["rounds_by_category"].items()
        },
        max_machine_words=int(meta["max_machine_words"]),
        space_limit=int(meta["space_limit"]),
        words_moved=int(meta.get("words_moved", 0)),
        records=tuple(_iteration_from_dict(r) for r in meta["records"]),
        fidelity_events=tuple(meta["fidelity_events"]),
    )
    solution = np.asarray(arrays["solution"], dtype=np.int64)
    if kind == "mis":
        return MISResult(
            independent_set=solution,
            stages_compressed=int(meta.get("stages_compressed", 0)),
            num_colors=int(meta.get("num_colors", 0)),
            **common,
        )
    if kind == "matching":
        return MatchingResult(pairs=solution.reshape(-1, 2), **common)
    raise ValueError(f"unknown result kind {kind!r}")
