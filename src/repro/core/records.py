"""Run records: per-stage / per-iteration traces and result objects.

Everything a benchmark or test might want to inspect about a run is captured
here rather than printed: sparsification stage traces (the invariant
measurements behind Lemmas 10/11/17/18), per-iteration progress (the
Lemma 13/21 constants), seed-search effort, and the final solution plus the
model accounting (rounds by category, space high-water marks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "IterationRecord",
    "MISResult",
    "MatchingResult",
    "StageRecord",
]


@dataclass(frozen=True)
class StageRecord:
    """One sparsification stage (Section 3.2 / 4.2)."""

    stage: int  # j in 1..i-4 (0 = the trivial E* = E0 / Q' = Q0 case)
    kind: str  # "edges" | "nodes"
    items_before: int
    items_after: int
    sample_prob: float  # realised threshold probability (floor(p q) / q)
    num_machines: int
    max_load: int
    seed: int
    trials: int
    slack_kappa: float  # realised slack multiplier (paper nominal: n^{0.1 delta})
    escalations: int  # slack relaxations needed before an all-good seed
    all_good: bool
    # invariant (i): max over v of measured degree / implied bound (<= 1 when
    # all_good), plus measured decay vs the paper's ideal n^{-j delta}.
    degree_bound_ratio: float
    degree_decay_measured: float
    degree_decay_ideal: float
    # invariant (ii): min over v in B of retained weight / implied lower
    # bound (>= 1 when all_good), plus measured retention vs ideal.
    retention_bound_ratio: float
    retention_decay_measured: float
    retention_decay_ideal: float


@dataclass(frozen=True)
class IterationRecord:
    """One outer Luby iteration of Algorithm 2 / Algorithm 3."""

    iteration: int
    edges_before: int
    edges_after: int
    i_star: int
    num_good_nodes: int
    weight_b: float
    stages: tuple[StageRecord, ...]
    selection_value: float  # achieved objective sum_{v in N_h} d(v)
    selection_target: float
    selection_trials: int
    selection_satisfied: bool
    seed_bits: int
    nodes_removed: int

    @property
    def removed_fraction(self) -> float:
        if self.edges_before == 0:
            return 0.0
        return (self.edges_before - self.edges_after) / self.edges_before


@dataclass(frozen=True)
class MatchingResult:
    """Result of the deterministic maximal matching algorithm (Theorem 7)."""

    pairs: np.ndarray  # (k, 2) int64 matched endpoint pairs (original ids)
    iterations: int
    rounds: int
    rounds_by_category: dict[str, int]
    max_machine_words: int
    space_limit: int
    records: tuple[IterationRecord, ...] = field(repr=False)
    fidelity_events: tuple[str, ...] = ()

    @property
    def matched_nodes(self) -> np.ndarray:
        return np.unique(self.pairs.ravel()) if self.pairs.size else np.empty(
            0, dtype=np.int64
        )

    def matching_mask(self, n: int) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        if self.pairs.size:
            mask[self.pairs.ravel()] = True
        return mask


@dataclass(frozen=True)
class MISResult:
    """Result of the deterministic MIS algorithm (Theorem 14)."""

    independent_set: np.ndarray  # int64 node ids (original ids)
    iterations: int
    rounds: int
    rounds_by_category: dict[str, int]
    max_machine_words: int
    space_limit: int
    records: tuple[IterationRecord, ...] = field(repr=False)
    fidelity_events: tuple[str, ...] = ()
    stages_compressed: int = 0  # Section-5 runs: number of compressed stages
    num_colors: int = 0  # Section-5 runs: palette size of the G^2 coloring

    def mis_mask(self, n: int) -> np.ndarray:
        mask = np.zeros(n, dtype=bool)
        if self.independent_set.size:
            mask[self.independent_set] = True
        return mask
