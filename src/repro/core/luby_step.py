"""Derandomized Luby selection on the sparsified structure (Secs 3.3, 4.3).

After sparsification, 2-hop neighbourhoods in ``E*`` / ``Q'`` fit on single
machines, so one more derandomization step selects:

* a matching ``M = E_h ⊆ E*`` -- edge ``e`` joins iff its z-value is a strict
  local minimum among ``E*``-adjacent edges (Section 3.3); the objective is
  ``sum_{v in B, v matched} d(v)`` whose expectation Lemma 13 lower-bounds by
  ``W_B / 109``;
* an independent set ``I_h ⊆ Q'`` -- node ``v`` joins iff its z-value beats
  all ``Q'``-neighbours (Section 4.3); the objective is
  ``sum_{v in B : N_v ∩ I_h != ∅} d(v)`` with expectation ``>= 0.01 delta
  W_B`` by Lemma 21, where ``N_v`` is (up to) ``n^{4 delta}`` of ``v``'s
  ``Q'``-neighbours.

z-values come from a *pairwise* product family over ids (wide range, so ties
are negligible; residual ties break by id, which can only merge in favour of
lower ids and never breaks matching/independence).  The strategy
``conditional_expectation`` swaps in a small single-field family so the whole
family is enumerable -- the literal Section-2.4 machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..derand.strategies import BatchObjective, SeedSelection, select_seed_batch
from ..graphs.graph import Graph
from ..graphs.kernels import (
    group_order_indptr,
    segment_any_block_fn,
    segment_min_block_fn,
)
from ..hashing.families import ProductHashFamily, make_product_family
from ..hashing.kwise import KWiseHashFamily, make_family
from ..mpc.context import MPCContext
from .good_nodes import GoodNodesMatching, GoodNodesMIS
from .params import Params

__all__ = ["LubyStepInfo", "first_k_arcs", "luby_matching_step", "luby_mis_step"]


@dataclass(frozen=True)
class LubyStepInfo:
    """Bookkeeping of one derandomized Luby selection."""

    selection: SeedSelection
    target: float
    seed_bits: int
    family_size: int


def _choose_z_family(
    universe: int, params: Params
) -> ProductHashFamily | KWiseHashFamily:
    """Pairwise z-value family; enumerable variant for cond.-expectation."""
    if params.strategy == "conditional_expectation":
        fam = make_family(universe=max(universe, 2), k=2, min_q=5)
        if fam.size > params.enumeration_cap:
            raise ValueError(
                f"conditional_expectation needs an enumerable family; "
                f"universe {universe} gives {fam.size} seeds "
                f"(> cap {params.enumeration_cap}) -- use a smaller input or "
                f"strategy='scan'"
            )
        return fam
    return make_product_family(max(universe, 2), k=2, min_q=params.min_q)


def _select(
    family_size: int, batch_objective: BatchObjective, params: Params, target: float
) -> SeedSelection:
    return select_seed_batch(
        family_size,
        batch_objective,
        strategy=params.strategy,
        target=target,
        max_trials=params.max_scan_trials,
        enumeration_cap=params.enumeration_cap,
        best_of_k=params.best_of_k,
        backend=params.seed_backend,
        chunk_size=params.seed_chunk,
    )


def first_k_arcs(
    groups: np.ndarray, units: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Keep, for every group, its first ``k`` arcs (stable by input order).

    Implements the paper's "gather a set ``N_v`` of up to ``n^{4 delta}`` of
    v's neighbours in ``Q'`` (arbitrary subset)" deterministically.
    """
    if groups.size == 0:
        return groups, units
    order = np.argsort(groups, kind="stable")
    sg = groups[order]
    starts = np.nonzero(np.concatenate([[True], sg[1:] != sg[:-1]]))[0]
    sizes = np.diff(np.concatenate([starts, [sg.size]]))
    rank = np.arange(sg.size, dtype=np.int64) - np.repeat(starts, sizes)
    keep_sorted = rank < k
    keep = np.zeros(groups.size, dtype=bool)
    keep[order[keep_sorted]] = True
    return groups[keep], units[keep]


# ---------------------------------------------------------------------- #
# Matching (Section 3.3)
# ---------------------------------------------------------------------- #


def luby_matching_step(
    g: Graph,
    e_star_mask: np.ndarray,
    good: GoodNodesMatching,
    params: Params,
    ctx: MPCContext,
    fidelity: list[str],
) -> tuple[np.ndarray, LubyStepInfo]:
    """Pick a matching ``M ⊆ E*`` covering weight ``>= target``.

    Returns the matched edge ids (into ``g``'s edge arrays) and step info.
    """
    eids = np.nonzero(np.asarray(e_star_mask, dtype=bool))[0].astype(np.int64)
    if eids.size == 0:
        raise ValueError("luby_matching_step requires a non-empty E*")
    us, vs = g.edges_u[eids], g.edges_v[eids]
    deg = g.degrees().astype(np.float64)

    # 2-hop gather space accounting: machine x_v stores, for each E*-incident
    # edge of v, that edge plus its E*-adjacent edges.
    d_star = g.degrees_within(e_star_mask).astype(np.int64)
    two_hop = np.zeros(g.n, dtype=np.int64)
    np.add.at(two_hop, us, d_star[vs] + 1)
    np.add.at(two_hop, vs, d_star[us] + 1)
    b_ids = np.nonzero(good.b_mask)[0]
    if b_ids.size:
        ctx.space.observe_loads(two_hop[b_ids], "2-hop E* gather")
    # Volume: every gathered 2-hop item is one word shipped to x_v.
    ctx.charge_gather_2hop(
        "luby_gather", words=int(two_hop[b_ids].sum()) if b_ids.size else 0
    )

    family = _choose_z_family(g.m, params)
    # Local-minimum keys: z * (m + 1) + edge_id, strict total order.
    stride = np.uint64(g.m + 1)
    if family.range * (g.m + 1) >= 2**62:
        raise ValueError("key space too large; reduce m or field size")
    maxkey = np.uint64(2**63 - 1)

    b_u = good.b_mask[us]
    b_v = good.b_mask[vs]
    w_u = deg[us]
    w_v = deg[vs]
    eids_u64 = eids.astype(np.uint64)

    # Incidence grouping of the E* arcs (both orientations), sorted by node:
    # per-node minima over incident E*-edges become one 2-D reduceat.
    inc_nodes = np.concatenate([us, vs])
    inc_pos = np.concatenate(
        [np.arange(eids.size, dtype=np.int64)] * 2
    )
    inc_order, inc_indptr = group_order_indptr(inc_nodes, g.n)
    node_min_fn = segment_min_block_fn(inc_pos[inc_order], inc_indptr, eids.size)

    def matched_masks(seeds: np.ndarray) -> np.ndarray:
        """bool[S, |E*|]: the strict-local-minimum matching per trial seed."""
        z = family.evaluate_batch(seeds, eids)
        key = z * stride + eids_u64[None, :]
        node_min = node_min_fn(key, maxkey)
        return (key == node_min[:, us]) & (key == node_min[:, vs])

    def batch_objective(seeds: np.ndarray) -> np.ndarray:
        matched = matched_masks(seeds)
        # sum of d(v) over matched B endpoints (keys are unique, so each
        # node is matched by at most one edge).
        return (
            np.where(matched & b_u[None, :], w_u[None, :], 0.0).sum(axis=1)
            + np.where(matched & b_v[None, :], w_v[None, :], 0.0).sum(axis=1)
        )

    target = params.matching_target(good.weight_b)
    sel = _select(family.size, batch_objective, params, target)
    ctx.charge_seed_fix(family.seed_bits, "luby_seed")
    if not sel.satisfied:
        fidelity.append(
            f"matching step: scan target {target:.2f} not met "
            f"(best {sel.value:.2f}); using best seed"
        )

    matched = matched_masks(np.array([sel.seed], dtype=np.int64))[0]
    matched_eids = eids[matched]
    info = LubyStepInfo(
        selection=sel,
        target=target,
        seed_bits=family.seed_bits,
        family_size=family.size,
    )
    return matched_eids, info


# ---------------------------------------------------------------------- #
# MIS (Section 4.3)
# ---------------------------------------------------------------------- #


def luby_mis_step(
    g: Graph,
    q_prime_mask: np.ndarray,
    good: GoodNodesMIS,
    params: Params,
    ctx: MPCContext,
    fidelity: list[str],
) -> tuple[np.ndarray, LubyStepInfo]:
    """Pick an independent set ``I ⊆ Q'`` with covered weight ``>= target``.

    Returns a bool[n] mask for ``I`` and step info.
    """
    q_mask = np.asarray(q_prime_mask, dtype=bool)
    q_ids = np.nonzero(q_mask)[0].astype(np.int64)
    if q_ids.size == 0:
        raise ValueError("luby_mis_step requires a non-empty Q'")
    deg = g.degrees().astype(np.float64)

    # Q'-internal edges (both endpoints in Q'): the only conflicts for I.
    internal = q_mask[g.edges_u] & q_mask[g.edges_v]
    iu = g.edges_u[internal]
    iv = g.edges_v[internal]

    # N_v: up to chunk = n^{4 delta} Q'-neighbours per B-node.
    chunk = params.chunk_size(g.n)
    groups_b, units_b = _arcs_b_to_q(g, good.b_mask, q_mask)
    nb_groups, nb_units = first_k_arcs(groups_b, units_b, chunk)

    # Space accounting: machine x_v holds N_v and its Q'-neighbourhoods.
    d_q = g.degrees_toward(q_mask).astype(np.int64)
    words = np.zeros(g.n, dtype=np.int64)
    if nb_groups.size:
        np.add.at(words, nb_groups, 1 + d_q[nb_units])
    b_ids = np.nonzero(good.b_mask)[0]
    if b_ids.size:
        ctx.space.observe_loads(words[b_ids], "N_v gather")
    ctx.charge_gather_2hop(
        "luby_gather", words=int(words[b_ids].sum()) if b_ids.size else 0
    )

    family = _choose_z_family(g.n, params)
    stride = np.uint64(g.n + 1)
    if family.range * (g.n + 1) >= 2**62:
        raise ValueError("key space too large; reduce n or field size")
    maxkey = np.uint64(2**63 - 1)

    w_b = deg  # objective weights d(v)
    q_u64 = q_ids.astype(np.uint64)

    # Q'-internal adjacency (both orientations) sorted by node, for the
    # per-node neighbour-min; N_v arcs sorted by B-node, for the per-node
    # "any neighbour joined I" flag.  Both become 2-D reduceat calls.
    adj_nodes = np.concatenate([iu, iv])
    adj_nbrs = np.concatenate([iv, iu])
    adj_order, adj_indptr = group_order_indptr(adj_nodes, g.n)
    nbr_min_fn = segment_min_block_fn(adj_nbrs[adj_order], adj_indptr, g.n)
    nb_order, nb_indptr = group_order_indptr(nb_groups, g.n)
    nb_any_fn = segment_any_block_fn(nb_units[nb_order], nb_indptr, g.n)

    def compute_i_masks(seeds: np.ndarray) -> np.ndarray:
        """bool[S, n]: the candidate independent set per trial seed."""
        z = family.evaluate_batch(seeds, q_ids)
        key_full = np.full((z.shape[0], g.n), maxkey, dtype=np.uint64)
        key_full[:, q_ids] = z * stride + q_u64[None, :]
        nbr_min = nbr_min_fn(key_full, maxkey)
        i_mask = np.zeros(key_full.shape, dtype=bool)
        i_mask[:, q_ids] = key_full[:, q_ids] < nbr_min[:, q_ids]
        return i_mask

    def batch_objective(seeds: np.ndarray) -> np.ndarray:
        i_mask = compute_i_masks(seeds)
        flagged = nb_any_fn(i_mask)
        sel_mask = flagged & good.b_mask[None, :]
        return np.where(sel_mask, w_b[None, :], 0.0).sum(axis=1)

    target = params.mis_target(good.weight_b)
    sel = _select(family.size, batch_objective, params, target)
    ctx.charge_seed_fix(family.seed_bits, "luby_seed")
    if not sel.satisfied:
        fidelity.append(
            f"MIS step: scan target {target:.2f} not met "
            f"(best {sel.value:.2f}); using best seed"
        )

    i_mask = compute_i_masks(np.array([sel.seed], dtype=np.int64))[0]
    info = LubyStepInfo(
        selection=sel,
        target=target,
        seed_bits=family.seed_bits,
        family_size=family.size,
    )
    return i_mask, info


def _arcs_b_to_q(g: Graph, b_mask: np.ndarray, q_mask: np.ndarray):
    """Arcs (v in B) -> (u in Q') over both edge orientations."""
    eu, ev = g.edges_u, g.edges_v
    fwd = b_mask[eu] & q_mask[ev]
    bwd = b_mask[ev] & q_mask[eu]
    groups = np.concatenate([eu[fwd], ev[bwd]])
    units = np.concatenate([ev[fwd], eu[bwd]])
    return groups, units
