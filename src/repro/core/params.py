"""Algorithm parameters (the constants of Theorems 1, 7 and 14).

The paper's knobs and how we expose them:

* ``eps`` -- machines have ``S = Theta(n^eps)`` words.  Theorems hold for any
  constant ``eps > 0``.
* ``delta = eps / 8`` -- the degree-class granularity (Sections 3.4, 4.4 set
  ``delta = eps/8`` so the 2-hop gather fits in ``O(n^{8 delta}) = O(n^eps)``
  space).  ``1/delta`` is the number of degree classes ``C_i``.
* ``c`` -- independence of the sparsification hash family ("sufficiently
  large constant c"; Lemma 9 needs even ``c >= 4``; ``c = 2`` with Chebyshev
  slack is available for ablations).
* seed-selection strategy and its budgets (see :mod:`repro.derand`).
* progress-target constants: the paper proves per-iteration expected
  progress ``>= W_B / 109`` (matching, Lemma 13) and ``>= 0.01 delta W_B``
  (MIS, Lemma 21) where ``W_B = sum_{v in B} d(v)``; the ``scan`` strategy
  uses ``target_safety`` times these as its stopping threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..derand.strategies import SEED_BACKENDS
from ..graphs.kernels import BACKENDS as KERNEL_BACKENDS
from ..models.plane import ENGINE_BACKENDS

__all__ = ["Params"]


@dataclass(frozen=True)
class Params:
    """Tunable constants for the deterministic MPC algorithms."""

    eps: float = 0.5
    delta: float | None = None  # defaults to eps / 8
    c: int = 4  # sparsification family independence (2 or even >= 4)
    strategy: str = "scan"  # seed selection: scan | conditional_expectation | best_of
    max_scan_trials: int = 512
    best_of_k: int = 64
    enumeration_cap: int = 1 << 16
    seed_backend: str | None = None  # batched | scalar | jit (REPRO_SEED_BACKEND)
    seed_chunk: int | None = None  # seeds per objective block (REPRO_SEED_CHUNK)
    seed_scan_workers: int = 0  # >1 enables the process-parallel stage scan
    kernel_backend: str | None = None  # csr | legacy | jit (REPRO_KERNEL_BACKEND)
    engine_backend: str | None = None  # columnar | legacy (REPRO_ENGINE_BACKEND)
    congest_pipeline_seed_fix: bool = False  # CONGEST O(D + seed_bits) ablation
    target_safety: float = 1.0  # multiplies the paper's progress constants
    matching_step_fraction: float = 1.0 / 109.0  # Lemma 13 constant
    mis_step_fraction_per_delta: float = 0.01  # Lemma 21: 0.01 * delta
    space_factor: float = 32.0
    total_factor: float = 16.0
    min_q: int = 257  # hash-field floor (range granularity on tiny inputs)
    slack_escalation: float = 1.5  # kappa multiplier when a scan finds no
    # all-good seed within budget (recorded as a fidelity event)
    max_slack_escalations: int = 8
    check_invariants: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.eps <= 1:
            raise ValueError(f"eps must be in (0, 1], got {self.eps}")
        if self.delta is not None and not 0 < self.delta <= self.eps:
            raise ValueError("delta must be in (0, eps]")
        if self.c != 2 and (self.c < 4 or self.c % 2 != 0):
            raise ValueError("c must be 2 or an even integer >= 4")
        if self.strategy not in ("scan", "conditional_expectation", "best_of"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.seed_backend is not None and self.seed_backend not in SEED_BACKENDS:
            raise ValueError(f"unknown seed backend {self.seed_backend!r}")
        if self.seed_chunk is not None and self.seed_chunk < 1:
            raise ValueError("seed_chunk must be >= 1")
        if self.seed_scan_workers < 0:
            raise ValueError("seed_scan_workers must be >= 0")
        if self.kernel_backend is not None and self.kernel_backend not in (
            KERNEL_BACKENDS
        ):
            raise ValueError(f"unknown kernel backend {self.kernel_backend!r}")
        if self.engine_backend is not None and self.engine_backend not in (
            ENGINE_BACKENDS
        ):
            raise ValueError(f"unknown engine backend {self.engine_backend!r}")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def delta_value(self) -> float:
        return self.delta if self.delta is not None else self.eps / 8.0

    @property
    def num_classes(self) -> int:
        """Number of degree classes ``1/delta`` (rounded up)."""
        return max(1, math.ceil(1.0 / self.delta_value - 1e-9))

    def n_pow(self, n: int, k: float) -> float:
        """``n^{k * delta}`` with the conventional ``n >= 2`` guard."""
        return max(n, 2) ** (k * self.delta_value)

    def sample_prob(self, n: int) -> float:
        """Per-stage subsampling rate ``n^{-delta}``."""
        return 1.0 / self.n_pow(n, 1.0)

    def chunk_size(self, n: int) -> int:
        """Items per group machine, ``ceil(n^{4 delta})`` (Secs 3.2, 4.2)."""
        return max(1, math.ceil(self.n_pow(n, 4.0)))

    def degree_cap(self, n: int) -> float:
        """Post-sparsification degree bound ``2 n^{4 delta}`` (Sec 3.3)."""
        return 2.0 * self.n_pow(n, 4.0)

    def low_degree_threshold(self, n: int) -> int:
        """Section-5 regime boundary: ``Delta <= n^{delta}``."""
        return max(1, math.floor(self.n_pow(n, 1.0)))

    def matching_target(self, w_b: float) -> float:
        """Scan target for the matching Luby step (Lemma 13)."""
        return self.target_safety * self.matching_step_fraction * w_b

    def mis_target(self, w_b: float) -> float:
        """Scan target for the MIS Luby step (Lemma 21)."""
        return (
            self.target_safety
            * self.mis_step_fraction_per_delta
            * self.delta_value
            * w_b
        )

    def with_(self, **kwargs) -> "Params":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)
