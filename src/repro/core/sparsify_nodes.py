"""Deterministic node sparsification (paper Section 4.2).

MIS sparsifies the *node* set ``Q_0 = C_{i*}`` rather than an edge set --
edges between candidate independent-set nodes must survive so that ``I`` is
genuinely independent.  Stage ``j`` subsamples ``Q_{j-1}`` at rate
``n^{-delta}`` by hashing node ids, derandomized so that:

* every type-Q machine (holding a chunk of some ``v in Q_{j-1}``'s
  ``Q_{j-1}``-neighbours) sees at most ``mu_x + lambda_x`` sampled
  neighbours  -> invariant (i): ``d_{Q_j}(v) <= (1+o(1)) n^{-j delta} d(v)``;
* every type-B machine (holding a chunk of some ``v in B``'s
  ``Q_{j-1}``-neighbours, weighted ``w_u = n^{(i-1)delta} / d(u) in (0,1]``)
  retains weight at least ``mu_x - lambda_x``  -> invariant (ii):
  ``sum_{u in Q_j ~ v} 1/d(u) >= (delta - o(1)) / (3 n^{j delta})``.

The scaling by ``n^{(i-1)delta}`` mirrors the paper's proof (variables
``Z_v = n^{(i-1)delta}/d(v) * 1{v in Q_h}`` take values in [0, 1] because
every ``u in Q`` has ``d(u) >= n^{(i-1)delta}``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..hashing.kwise import make_family
from ..mpc.context import MPCContext
from ..mpc.partition import chunk_items_by_group
from .good_nodes import GoodNodesMIS
from .params import Params
from .records import StageRecord
from .stage import MachineGroupSpec, node_level_spec, run_stage_seed_search

__all__ = ["NodeSparsifyResult", "sparsify_nodes"]


@dataclass(frozen=True)
class NodeSparsifyResult:
    """``Q'`` plus the per-stage trace."""

    q_prime_mask: np.ndarray  # bool[n]
    stages: tuple[StageRecord, ...]
    num_stages: int

    @property
    def num_nodes(self) -> int:
        return int(self.q_prime_mask.sum())


def _arcs_toward(g: Graph, src_mask: np.ndarray, dst_mask: np.ndarray):
    """Directed arcs (v -> u) with ``src_mask[v]`` and ``dst_mask[u]``.

    Returns (groups=v array, units=u array) over both edge orientations.
    """
    eu, ev = g.edges_u, g.edges_v
    fwd = src_mask[eu] & dst_mask[ev]
    bwd = src_mask[ev] & dst_mask[eu]
    groups = np.concatenate([eu[fwd], ev[bwd]])
    units = np.concatenate([ev[fwd], eu[bwd]])
    return groups, units


def sparsify_nodes(
    g: Graph,
    good: GoodNodesMIS,
    params: Params,
    ctx: MPCContext,
    fidelity: list[str],
) -> NodeSparsifyResult:
    """Compute ``Q' ⊆ Q_0`` with internal degrees ``O(n^{4 delta})``."""
    i = good.i_star
    q_mask = good.q0_mask.copy()
    num_stages = max(0, i - 4)
    if num_stages == 0 or q_mask.sum() == 0:
        return NodeSparsifyResult(
            q_prime_mask=q_mask, stages=tuple(), num_stages=0
        )

    family = make_family(universe=max(g.n, 2), k=params.c, min_q=params.min_q)
    prob = params.sample_prob(g.n)
    chunk = params.chunk_size(g.n)
    deg = g.degrees().astype(np.float64)
    inv_deg = np.zeros(g.n, dtype=np.float64)
    nz = deg > 0
    inv_deg[nz] = 1.0 / deg[nz]
    # Weight scale: every u in Q = C_i has d(u) >= n^{(i-1) delta}.
    scale = params.n_pow(g.n, float(i - 1))
    weights_of_node = np.minimum(scale * inv_deg, 1.0)

    # Stage-0 references for decay reporting.
    deg_q0 = g.degrees_toward(good.q0_mask).astype(np.float64)
    w_q0 = good.inv_deg_toward_q0.copy()

    stages: list[StageRecord] = []
    for j in range(1, num_stages + 1):
        items_before = int(q_mask.sum())
        if items_before == 0:
            fidelity.append(f"node sparsification stage {j}: Q emptied; stopping")
            break

        groups_q, units_q = _arcs_toward(g, q_mask, q_mask)
        grouping_q = chunk_items_by_group(groups_q, chunk)

        groups_b, units_b = _arcs_toward(g, good.b_mask, q_mask)
        grouping_b = chunk_items_by_group(groups_b, chunk)
        weights_b = weights_of_node[units_b]

        # Distribution volume: one word per arc shipped to its group machine.
        ctx.charge_sort(
            "sparsify_distribute", words=int(groups_q.size + groups_b.size)
        )
        ctx.space.observe_loads(grouping_q.loads, "type-Q node distribution")
        ctx.space.observe_loads(grouping_b.loads, "type-B node distribution")

        specs = [
            MachineGroupSpec(
                name="Q", grouping=grouping_q, unit_ids=units_q,
                check_upper=True, check_lower=False,
            ),
            MachineGroupSpec(
                name="B", grouping=grouping_b, unit_ids=units_b,
                weights=weights_b, check_upper=False, check_lower=True,
            ),
            # Node-level windows (see stage.py): per-node invariant directly.
            node_level_spec(
                "Q/node", groups_q, units_q, check_upper=True, check_lower=False
            ),
            node_level_spec(
                "B/node", groups_b, units_b, weights=weights_b,
                check_upper=False, check_lower=True,
            ),
        ]
        stage_scan_start = 1 + (j - 1) * params.max_scan_trials
        outcome = run_stage_seed_search(
            family, prob, specs, params, g.n, fidelity, scan_start=stage_scan_start
        )
        ctx.charge_seed_fix(family.seed_bits, "sparsify_seed")

        q_ids = np.nonzero(q_mask)[0].astype(np.int64)
        sampled = family.sample_indicator(outcome.seed, q_ids, prob)
        new_mask = np.zeros(g.n, dtype=bool)
        new_mask[q_ids[sampled]] = True
        ctx.charge_broadcast("sparsify_apply")

        # ---- invariant measurements -------------------------------------- #
        deg_qj = g.degrees_toward(new_mask).astype(np.float64)
        bound_deg = np.zeros(g.n, dtype=np.float64)
        np.add.at(
            bound_deg,
            specs[2].grouping.group_of_machine,
            outcome.mus[2] + outcome.lambdas[2],
        )
        active = bound_deg > 0
        degree_bound_ratio = (
            float(np.max(deg_qj[active] / bound_deg[active])) if active.any() else 0.0
        )

        # Retained weight per B-node: sum_{u in Q_j ~ v} w_u (scaled units).
        keep = new_mask[units_b]
        retained = np.zeros(g.n, dtype=np.float64)
        np.add.at(retained, groups_b[keep], weights_b[keep])
        lower = np.zeros(g.n, dtype=np.float64)
        np.add.at(
            lower,
            specs[3].grouping.group_of_machine,
            np.maximum(outcome.mus[3] - outcome.lambdas[3], 0.0),
        )
        lb_active = lower > 0
        retention_bound_ratio = (
            float(np.min(retained[lb_active] / lower[lb_active]))
            if lb_active.any()
            else float("inf")
        )

        ideal = outcome.p_real**j
        with np.errstate(divide="ignore", invalid="ignore"):
            dz = deg_q0 > 0
            decay_meas = float(np.mean(deg_qj[dz] / deg_q0[dz])) if dz.any() else 0.0
            # unscale: retained weight in 1/d units vs the stage-0 value.
            wz = (w_q0 > 0) & good.b_mask
            ret_meas = (
                float(np.mean((retained[wz] / scale) / w_q0[wz])) if wz.any() else 0.0
            )

        stages.append(
            StageRecord(
                stage=j,
                kind="nodes",
                items_before=items_before,
                items_after=int(new_mask.sum()),
                sample_prob=outcome.p_real,
                num_machines=grouping_q.num_machines + grouping_b.num_machines,
                max_load=max(grouping_q.max_load(), grouping_b.max_load()),
                seed=outcome.seed,
                trials=outcome.trials,
                slack_kappa=outcome.kappa,
                escalations=outcome.escalations,
                all_good=outcome.all_good,
                degree_bound_ratio=degree_bound_ratio,
                degree_decay_measured=decay_meas,
                degree_decay_ideal=ideal,
                retention_bound_ratio=retention_bound_ratio,
                retention_decay_measured=ret_meas,
                retention_decay_ideal=ideal,
            )
        )

        if new_mask.sum() == 0:
            fidelity.append(
                f"node sparsification stage {j} emptied Q'; keeping previous set"
            )
            break
        q_mask = new_mask

    return NodeSparsifyResult(
        q_prime_mask=q_mask, stages=tuple(stages), num_stages=len(stages)
    )
