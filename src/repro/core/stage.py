"""Shared machinery for one derandomized subsampling stage.

Both sparsification procedures (edges, Section 3.2; nodes, Section 4.2) have
the same skeleton per stage ``j``:

1. distribute each node's current items across a *machine group* with
   ``chunk = n^{4 delta}`` items per machine ("type A/B/Q machines");
2. declare a machine *good* for a hash function ``h`` when its sampled-item
   statistic lies within ``mu_x +- lambda_x`` (upper-only for pure degree
   bounds, lower-only for weight-retention bounds);
3. deterministically find a seed making **all** machines good;
4. keep the sampled items.

This module implements steps 2-3 generically.  The slack is
``lambda_x = kappa * (sqrt(e_x) + 1)`` with ``kappa`` starting at the
paper's nominal ``n^{0.1 delta}`` and escalating by a fixed factor if no
all-good seed is found within the scan budget (each escalation is recorded
as a fidelity event; see DESIGN.md "Concentration slack").  Because goodness
of all machines *implies* the stage invariants by the Lemma 10/11/17/18
algebra, the caller can derive per-node bounds directly from the realised
``(mu_x, lambda_x)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..derand.estimators import certified_slacks
from ..derand.strategies import SeedSelection, select_seed
from ..hashing.kwise import KWiseHashFamily
from ..mpc.partition import MachineGrouping
from .params import Params

__all__ = [
    "MachineGroupSpec",
    "StageSearchOutcome",
    "node_level_spec",
    "run_stage_seed_search",
]


@dataclass
class MachineGroupSpec:
    """One machine group participating in a stage's goodness test.

    ``unit_ids[i]`` is the hashed unit (edge id or node id) of item ``i``;
    ``weights`` (optional) are per-item weights in ``(0, 1]`` for weighted
    retention statistics (the MIS type-B machines sum ``n^{(i-1)delta}/d(u)``
    terms); ``check_upper`` / ``check_lower`` select which side of the
    concentration window this group enforces.

    ``virtual=True`` marks a *node-level* goodness group: one "machine" per
    node holding the node's whole item set.  These do not correspond to
    physical machines (no space is charged for them); they enforce the
    per-node invariant window directly, which matters at finite sizes where
    ``chunk = n^{4 delta}`` is so small that per-chunk windows are vacuous
    (asymptotically the chunk windows imply the node windows -- that *is*
    the Lemma 10/11/17/18 summation -- so this adds nothing in the limit).
    """

    name: str
    grouping: MachineGrouping
    unit_ids: np.ndarray
    weights: np.ndarray | None = None
    check_upper: bool = True
    check_lower: bool = True
    virtual: bool = False

    def __post_init__(self) -> None:
        if self.unit_ids.shape[0] != self.grouping.num_items:
            raise ValueError(f"group {self.name}: unit_ids/grouping size mismatch")
        if self.weights is not None and self.weights.shape != self.unit_ids.shape:
            raise ValueError(f"group {self.name}: weights shape mismatch")

    def weight_totals(self) -> np.ndarray:
        """Per-machine total weight (item count if unweighted)."""
        w = (
            self.weights
            if self.weights is not None
            else np.ones(self.grouping.num_items, dtype=np.float64)
        )
        return np.bincount(
            self.grouping.machine_of_item,
            weights=w,
            minlength=self.grouping.num_machines,
        )

    def sampled_totals(self, sampled_mask_of_item: np.ndarray) -> np.ndarray:
        """Per-machine sampled weight under a boolean per-item mask."""
        w = (
            self.weights
            if self.weights is not None
            else np.ones(self.grouping.num_items, dtype=np.float64)
        )
        return np.bincount(
            self.grouping.machine_of_item,
            weights=w * sampled_mask_of_item,
            minlength=self.grouping.num_machines,
        )


def node_level_spec(
    name: str,
    groups: np.ndarray,
    units: np.ndarray,
    *,
    weights: np.ndarray | None = None,
    check_upper: bool = True,
    check_lower: bool = True,
) -> MachineGroupSpec:
    """Build a virtual one-machine-per-node goodness group (see class doc)."""
    from ..mpc.partition import chunk_items_by_group

    whole = max(1, int(groups.size) + 1)  # chunk larger than any group
    return MachineGroupSpec(
        name=name,
        grouping=chunk_items_by_group(groups, whole),
        unit_ids=units,
        weights=weights,
        check_upper=check_upper,
        check_lower=check_lower,
        virtual=True,
    )


@dataclass(frozen=True)
class StageSearchOutcome:
    """Chosen seed plus realised window parameters, per group."""

    seed: int
    kappa: float
    escalations: int
    trials: int
    all_good: bool
    p_real: float
    selection: SeedSelection
    # Per group (same order as the input specs): realised per-machine
    # expectation mu_x and slack lambda_x under the chosen kappa.
    mus: tuple[np.ndarray, ...]
    lambdas: tuple[np.ndarray, ...]
    # Per group: the slack the pairwise Chebyshev bound *certifies* for an
    # E[#bad] < 1 budget at these finite loads (vectorised per machine; see
    # repro.derand.estimators).  Reporting/diagnostics only -- the search
    # window itself uses the paper's nominal-kappa schedule above.
    certified_lambdas: tuple[np.ndarray, ...] = ()


def run_stage_seed_search(
    family: KWiseHashFamily,
    prob: float,
    groups: list[MachineGroupSpec],
    params: Params,
    n: int,
    fidelity: list[str],
    scan_start: int = 1,
) -> StageSearchOutcome:
    """Find a seed making all machines in all groups good (Sections 3.2/4.2).

    Deterministic: the scan order and the escalation schedule are fixed.
    ``scan_start`` gives each stage a *disjoint* region of the canonical seed
    order -- the deterministic analogue of the paper drawing a fresh
    independent hash function per stage.  (Re-scanning the previous stage's
    region could re-select the seed that defined the current item set, whose
    sampling predicate is idempotent on it and therefore makes no progress.)
    """
    threshold = family.threshold(prob)
    p_real = threshold / family.range
    total_machines = sum(g.grouping.num_machines for g in groups)

    # Precompute per-group static data.
    totals = [g.weight_totals() for g in groups]
    base_slacks = [
        np.sqrt(g.grouping.loads.astype(np.float64)) + 1.0 for g in groups
    ]
    mus = [p_real * t for t in totals]
    certified = tuple(
        certified_slacks(g.grouping.loads, p_real) for g in groups
    )

    def goodness_count(seed: int, kappa: float) -> int:
        good = 0
        for g, mu, base in zip(groups, mus, base_slacks):
            sampled = family.evaluate(seed, g.unit_ids) < np.uint64(threshold)
            got = g.sampled_totals(sampled)
            lam = kappa * base
            ok = np.ones(g.grouping.num_machines, dtype=bool)
            if g.check_upper:
                ok &= got <= mu + lam + 1e-9
            if g.check_lower:
                ok &= got >= mu - lam - 1e-9
            good += int(ok.sum())
        return good

    kappa = float(max(n, 2) ** (0.1 * params.delta_value))
    escalations = 0
    trials_total = 0
    best: SeedSelection | None = None
    while True:
        kap = kappa  # bind for the closure
        sel = select_seed(
            family.size,
            lambda s: float(goodness_count(s, kap)),
            strategy="scan",
            target=float(total_machines),
            max_trials=params.max_scan_trials,
            start=max(1, scan_start),  # >= 1 skips the constant-zero hash
        )
        trials_total += sel.trials
        if best is None or sel.value > best.value:
            best = sel
        if sel.satisfied:
            lam = [kappa * b for b in base_slacks]
            return StageSearchOutcome(
                seed=sel.seed,
                kappa=kappa,
                escalations=escalations,
                trials=trials_total,
                all_good=True,
                p_real=p_real,
                selection=sel,
                mus=tuple(mus),
                lambdas=tuple(lam),
                certified_lambdas=certified,
            )
        escalations += 1
        if escalations > params.max_slack_escalations:
            fidelity.append(
                f"stage seed search exhausted escalations "
                f"(best {best.value:.0f}/{total_machines} machines good)"
            )
            lam = [kappa * b for b in base_slacks]
            return StageSearchOutcome(
                seed=best.seed,
                kappa=kappa,
                escalations=escalations,
                trials=trials_total,
                all_good=False,
                p_real=p_real,
                selection=best,
                mus=tuple(mus),
                lambdas=tuple(lam),
                certified_lambdas=certified,
            )
        fidelity.append(
            f"stage slack escalated to kappa={kappa * params.slack_escalation:.3f}"
        )
        kappa *= params.slack_escalation
