"""Shared machinery for one derandomized subsampling stage.

Both sparsification procedures (edges, Section 3.2; nodes, Section 4.2) have
the same skeleton per stage ``j``:

1. distribute each node's current items across a *machine group* with
   ``chunk = n^{4 delta}`` items per machine ("type A/B/Q machines");
2. declare a machine *good* for a hash function ``h`` when its sampled-item
   statistic lies within ``mu_x +- lambda_x`` (upper-only for pure degree
   bounds, lower-only for weight-retention bounds);
3. deterministically find a seed making **all** machines good;
4. keep the sampled items.

This module implements steps 2-3 generically.  The slack is
``lambda_x = kappa * (sqrt(e_x) + 1)`` with ``kappa`` starting at the
paper's nominal ``n^{0.1 delta}`` and escalating by a fixed factor if no
all-good seed is found within the scan budget (each escalation is recorded
as a fidelity event; see DESIGN.md "Concentration slack").  Because goodness
of all machines *implies* the stage invariants by the Lemma 10/11/17/18
algebra, the caller can derive per-node bounds directly from the realised
``(mu_x, lambda_x)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..derand.estimators import certified_slacks
from ..derand.strategies import (
    SeedSelection,
    resolve_seed_backend,
    resolve_seed_workers,
    select_seed_batch,
)
from ..graphs.kernels import (
    HAS_SCIPY,
    group_order_indptr,
    segment_count_2d,
    segment_sum_2d,
)
from ..hashing.kwise import KWiseHashFamily
from ..mpc.partition import MachineGrouping
from ..obs import trace as _obs
from .params import Params

__all__ = [
    "MachineGroupSpec",
    "StageGoodness",
    "StageSearchOutcome",
    "node_level_spec",
    "run_stage_seed_search",
    "stage_goodness_kernel",
]


@dataclass
class MachineGroupSpec:
    """One machine group participating in a stage's goodness test.

    ``unit_ids[i]`` is the hashed unit (edge id or node id) of item ``i``;
    ``weights`` (optional) are per-item weights in ``(0, 1]`` for weighted
    retention statistics (the MIS type-B machines sum ``n^{(i-1)delta}/d(u)``
    terms); ``check_upper`` / ``check_lower`` select which side of the
    concentration window this group enforces.

    ``virtual=True`` marks a *node-level* goodness group: one "machine" per
    node holding the node's whole item set.  These do not correspond to
    physical machines (no space is charged for them); they enforce the
    per-node invariant window directly, which matters at finite sizes where
    ``chunk = n^{4 delta}`` is so small that per-chunk windows are vacuous
    (asymptotically the chunk windows imply the node windows -- that *is*
    the Lemma 10/11/17/18 summation -- so this adds nothing in the limit).
    """

    name: str
    grouping: MachineGrouping
    unit_ids: np.ndarray
    weights: np.ndarray | None = None
    check_upper: bool = True
    check_lower: bool = True
    virtual: bool = False

    def __post_init__(self) -> None:
        if self.unit_ids.shape[0] != self.grouping.num_items:
            raise ValueError(f"group {self.name}: unit_ids/grouping size mismatch")
        if self.weights is not None and self.weights.shape != self.unit_ids.shape:
            raise ValueError(f"group {self.name}: weights shape mismatch")

    def weight_totals(self) -> np.ndarray:
        """Per-machine total weight (item count if unweighted)."""
        w = (
            self.weights
            if self.weights is not None
            else np.ones(self.grouping.num_items, dtype=np.float64)
        )
        return np.bincount(
            self.grouping.machine_of_item,
            weights=w,
            minlength=self.grouping.num_machines,
        )

    def sampled_totals(self, sampled_mask_of_item: np.ndarray) -> np.ndarray:
        """Per-machine sampled weight under a boolean per-item mask."""
        w = (
            self.weights
            if self.weights is not None
            else np.ones(self.grouping.num_items, dtype=np.float64)
        )
        return np.bincount(
            self.grouping.machine_of_item,
            weights=w * sampled_mask_of_item,
            minlength=self.grouping.num_machines,
        )


def node_level_spec(
    name: str,
    groups: np.ndarray,
    units: np.ndarray,
    *,
    weights: np.ndarray | None = None,
    check_upper: bool = True,
    check_lower: bool = True,
) -> MachineGroupSpec:
    """Build a virtual one-machine-per-node goodness group (see class doc)."""
    from ..mpc.partition import chunk_items_by_group

    whole = max(1, int(groups.size) + 1)  # chunk larger than any group
    return MachineGroupSpec(
        name=name,
        grouping=chunk_items_by_group(groups, whole),
        unit_ids=units,
        weights=weights,
        check_upper=check_upper,
        check_lower=check_lower,
        virtual=True,
    )


@dataclass(frozen=True)
class StageSearchOutcome:
    """Chosen seed plus realised window parameters, per group."""

    seed: int
    kappa: float
    escalations: int
    trials: int
    all_good: bool
    p_real: float
    selection: SeedSelection
    # Per group (same order as the input specs): realised per-machine
    # expectation mu_x and slack lambda_x under the chosen kappa.
    mus: tuple[np.ndarray, ...]
    lambdas: tuple[np.ndarray, ...]
    # Per group: the slack the pairwise Chebyshev bound *certifies* for an
    # E[#bad] < 1 budget at these finite loads (vectorised per machine; see
    # repro.derand.estimators).  Reporting/diagnostics only -- the search
    # window itself uses the paper's nominal-kappa schedule above.
    certified_lambdas: tuple[np.ndarray, ...] = ()


#: Seed-block size from which the sparse item-to-machine incidence is built.
_INCIDENCE_MIN_BLOCK = 16


def _build_incidence(indptr: np.ndarray, n_items: int):
    """Sparse 0/1 machine-by-item matrix (CSR) for machine-sorted items.

    Stored as ``(machines, items)`` so the per-chunk product is a plain
    ``csr @ dense`` with a C-contiguous right-hand side -- scipy's
    dense-times-sparse fallback would silently ravel-copy the seed block
    on every call.
    """
    import scipy.sparse as sp

    n_machines = indptr.size - 1
    return sp.csr_matrix(
        (
            np.ones(n_items, dtype=np.int32),
            (
                np.repeat(np.arange(n_machines, dtype=np.int64), np.diff(indptr)),
                np.arange(n_items, dtype=np.int64),
            ),
        ),
        shape=(n_machines, n_items),
    )


def _goodness_counts(
    family: KWiseHashFamily,
    threshold: int,
    prepared: list[list],
    kappa: float,
    seeds: np.ndarray,
) -> np.ndarray:
    """float64[S]: per-seed count of good machines across all groups.

    ``prepared`` holds per-group ``(unit_sorted, w_sorted, indptr,
    incidence, mu, base, check_upper, check_lower)`` -- items pre-permuted
    into machine order so the per-machine sampled totals are one exact
    integer reduction along the seed axis (the hash is evaluated directly
    at the permuted unit ids; elementwise evaluation commutes with the
    permutation).  ``incidence`` is the sparse item-to-machine 0/1 matrix
    when scipy is available (sampled counts become one int mat-mat
    product); otherwise a prefix-sum segment counter runs over ``indptr``.
    Weighted groups sum float64 via ``reduceat``.  Rows reduce
    independently, so a single-seed call is bit-identical to the
    corresponding row of a block call (the batched/scalar parity the
    strategy layer relies on).
    """
    good = np.zeros(np.atleast_1d(np.asarray(seeds)).shape[0], dtype=np.float64)
    for grp in prepared:
        unit_sorted, w_sorted, indptr, incidence, mu, base, up, lo = grp
        sampled = family.indicator_batch(seeds, unit_sorted, threshold)
        lam = kappa * base
        if w_sorted is not None:
            got = segment_sum_2d(w_sorted[None, :] * sampled, indptr)
            ok = np.ones(got.shape, dtype=bool)
            if up:
                ok &= got <= mu[None, :] + lam[None, :] + 1e-9
            if lo:
                ok &= got >= mu[None, :] - lam[None, :] - 1e-9
        else:
            # The sparse incidence pays off on long scans; short scans
            # (the abundant-good-seeds common case) never build it.  Both
            # count paths are exact integers, so the choice cannot change
            # any outcome.
            if (
                incidence is None
                and sampled.shape[0] >= _INCIDENCE_MIN_BLOCK
                and HAS_SCIPY
                and unit_sorted.size
            ):
                incidence = grp[3] = _build_incidence(indptr, unit_sorted.size)
            if incidence is not None:
                # (machines, S) counts; the transposed layout keeps both
                # matmul operands contiguous (order="C" matters: a plain
                # astype of the transposed view stays F-ordered and scipy
                # would ravel-copy it on every call).
                got_t = incidence @ sampled.T.astype(np.int32, order="C")
            else:
                got_t = segment_count_2d(sampled, indptr).T
            # Integer counts against integer window bounds: identical
            # outcomes to the float comparisons, without casting the whole
            # block to float64.
            ok = np.ones(got_t.shape, dtype=bool)
            if up:
                hi_bound = np.floor(mu + lam + 1e-9).astype(np.int32)
                ok &= got_t <= hi_bound[:, None]
            if lo:
                lo_bound = np.ceil(mu - lam - 1e-9).astype(np.int32)
                ok &= got_t >= lo_bound[:, None]
            good += ok.sum(axis=0)
            continue
        good += ok.sum(axis=1)
    return good


class StageGoodness:
    """Batched all-machines-good counting kernel for one stage search.

    Precomputes, per group, the stable machine sort order, CSR offsets and
    sorted weights, then counts good machines for a whole seed block with
    one ``evaluate_batch`` + one 2-D segment reduction per group.
    """

    def __init__(
        self,
        family: KWiseHashFamily,
        threshold: int,
        groups: list[MachineGroupSpec],
        mus: list[np.ndarray],
        base_slacks: list[np.ndarray],
    ) -> None:
        self.family = family
        self.threshold = threshold
        self.prepared: list[list] = []
        for g, mu, base in zip(groups, mus, base_slacks):
            order, indptr = group_order_indptr(
                g.grouping.machine_of_item, g.grouping.num_machines
            )
            self.prepared.append(
                [
                    g.unit_ids[order],
                    g.weights[order] if g.weights is not None else None,
                    indptr,
                    None,  # incidence: built lazily on the first long scan
                    mu,
                    base,
                    g.check_upper,
                    g.check_lower,
                ]
            )

    def counts(self, seeds: np.ndarray, kappa: float) -> np.ndarray:
        """float64[S] good-machine counts for a seed block at slack ``kappa``."""
        return _goodness_counts(
            self.family, self.threshold, self.prepared, kappa, seeds
        )

    def payload(self, kappa: float) -> dict:
        """Picklable payload for :func:`stage_goodness_kernel` workers.

        Incidences are force-built first: each worker evaluates many seed
        blocks against the shipped payload, and lazily rebuilding the
        sparse matrix per block would waste the pool's time.
        """
        if HAS_SCIPY:
            for grp in self.prepared:
                if grp[1] is None and grp[3] is None and grp[0].size:
                    grp[3] = _build_incidence(grp[2], grp[0].size)
        return {
            "q": self.family.q,
            "k": self.family.k,
            "threshold": self.threshold,
            "kappa": kappa,
            "groups": self.prepared,
        }


def stage_goodness_kernel(payload: dict, seeds: np.ndarray) -> np.ndarray:
    """Top-level (picklable) goodness kernel for the parallel seed scan.

    Reconstructs the hash family from ``(q, k)`` and runs the exact same
    counting code as :meth:`StageGoodness.counts`, so worker-evaluated seed
    blocks are bit-identical to in-process ones.
    """
    family = KWiseHashFamily(q=payload["q"], k=payload["k"])
    return _goodness_counts(
        family,
        payload["threshold"],
        payload["groups"],
        payload["kappa"],
        seeds,
    )


def run_stage_seed_search(
    family: KWiseHashFamily,
    prob: float,
    groups: list[MachineGroupSpec],
    params: Params,
    n: int,
    fidelity: list[str],
    scan_start: int = 1,
) -> StageSearchOutcome:
    """Find a seed making all machines in all groups good (Sections 3.2/4.2).

    Deterministic: the scan order and the escalation schedule are fixed.
    ``scan_start`` gives each stage a *disjoint* region of the canonical seed
    order -- the deterministic analogue of the paper drawing a fresh
    independent hash function per stage.  (Re-scanning the previous stage's
    region could re-select the seed that defined the current item set, whose
    sampling predicate is idempotent on it and therefore makes no progress.)
    The scan wraps around past the end of its region, so late stages still
    cover the whole family before giving up.

    The goodness objective is evaluated in seed blocks (see
    :class:`StageGoodness`); ``params.seed_scan_workers > 1`` additionally
    farms the blocks to a process pool with deterministic first-satisfying-
    seed resolution (same :class:`SeedSelection` as the serial scan).
    """
    threshold = family.threshold(prob)
    p_real = threshold / family.range
    total_machines = sum(g.grouping.num_machines for g in groups)

    # Precompute per-group static data.
    totals = [g.weight_totals() for g in groups]
    base_slacks = [
        np.sqrt(g.grouping.loads.astype(np.float64)) + 1.0 for g in groups
    ]
    mus = [p_real * t for t in totals]
    certified = tuple(
        certified_slacks(g.grouping.loads, p_real) for g in groups
    )

    goodness = StageGoodness(family, threshold, groups, mus, base_slacks)
    workers = resolve_seed_workers(params.seed_scan_workers)
    # The jit seed backend swaps the per-chunk numpy counting kernel for
    # one fused compiled loop (serial scans only: the process pool ships
    # the numpy payload).  Bit-identical counts either way, so the
    # selection outcome cannot depend on the resolved backend.
    use_jit = workers <= 1 and resolve_seed_backend(params.seed_backend) == "jit"

    kappa = float(max(n, 2) ** (0.1 * params.delta_value))
    escalations = 0
    trials_total = 0
    best: SeedSelection | None = None
    t_search = _obs.clock() if _obs._TRACING else 0.0

    def _trace_outcome(outcome: StageSearchOutcome) -> StageSearchOutcome:
        if _obs._TRACING:
            _obs.record_span(
                "stage.seed_search",
                t_search,
                {
                    "machines": total_machines,
                    "groups": len(groups),
                    "trials": outcome.trials,
                    "escalations": outcome.escalations,
                    "all_good": outcome.all_good,
                    "seed": outcome.seed,
                    "workers": workers,
                },
            )
        return outcome

    while True:
        kap = kappa  # bind for the closure
        if workers > 1:
            from ..runtime.seed_scan import parallel_scan

            sel = parallel_scan(
                stage_goodness_kernel,
                goodness.payload(kap),
                family.size,
                target=float(total_machines),
                max_trials=params.max_scan_trials,
                start=max(1, scan_start),
                chunk_size=params.seed_chunk,
                workers=workers,
            )
        else:
            if use_jit:
                from ..derand.seed_jit import make_stage_objective

                objective = make_stage_objective(goodness, kap)
            else:
                objective = lambda seeds: goodness.counts(seeds, kap)  # noqa: E731
            sel = select_seed_batch(
                family.size,
                objective,
                strategy="scan",
                target=float(total_machines),
                max_trials=params.max_scan_trials,
                start=max(1, scan_start),  # >= 1 skips the constant-zero hash
                backend=params.seed_backend,
                chunk_size=params.seed_chunk,
            )
        trials_total += sel.trials
        if best is None or sel.value > best.value:
            best = sel
        if sel.satisfied:
            lam = [kappa * b for b in base_slacks]
            return _trace_outcome(StageSearchOutcome(
                seed=sel.seed,
                kappa=kappa,
                escalations=escalations,
                trials=trials_total,
                all_good=True,
                p_real=p_real,
                selection=sel,
                mus=tuple(mus),
                lambdas=tuple(lam),
                certified_lambdas=certified,
            ))
        escalations += 1
        if escalations > params.max_slack_escalations:
            fidelity.append(
                f"stage seed search exhausted escalations "
                f"(best {best.value:.0f}/{total_machines} machines good)"
            )
            lam = [kappa * b for b in base_slacks]
            return _trace_outcome(StageSearchOutcome(
                seed=best.seed,
                kappa=kappa,
                escalations=escalations,
                trials=trials_total,
                all_good=False,
                p_real=p_real,
                selection=best,
                mus=tuple(mus),
                lambdas=tuple(lam),
                certified_lambdas=certified,
            ))
        fidelity.append(
            f"stage slack escalated to kappa={kappa * params.slack_escalation:.3f}"
        )
        kappa *= params.slack_escalation
