"""Deterministic edge sparsification (paper Section 3.2).

Starting from ``E_0 = union_{v in B} X(v)``, the procedure runs ``i - 4``
stages (no stages when ``i <= 4``: then ``E* = E_0`` already has degrees
``<= n^{4 delta}``).  Stage ``j`` subsamples ``E_{j-1}`` at rate
``n^{-delta}`` using a c-wise independent hash on *edge ids*, derandomized so
that every type-A and type-B machine is "good", which by the Lemma 10/11
algebra yields the stage invariants:

  (i)  ``d_{E_j}(v) <= sum over v's type-A machines of (mu_x + lambda_x)``
       for every node v (degree control), and
  (ii) ``|X(v) ∩ E_j| >= sum over v's type-B machines of (mu_x - lambda_x)``
       for every ``v in B`` (weight retention),

with ``mu_x = p_real * e_x``.  We record both the *implied bounds* (which
hold by construction whenever all machines are good) and the measured decay
against the paper's ideal ``n^{-j delta}`` rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..hashing.kwise import make_family
from ..mpc.context import MPCContext
from ..mpc.partition import chunk_items_by_group
from .good_nodes import GoodNodesMatching
from .params import Params
from .records import StageRecord
from .stage import MachineGroupSpec, node_level_spec, run_stage_seed_search

__all__ = ["EdgeSparsifyResult", "sparsify_edges"]


@dataclass(frozen=True)
class EdgeSparsifyResult:
    """``E*`` plus the per-stage trace."""

    e_star_mask: np.ndarray  # bool[m]
    stages: tuple[StageRecord, ...]
    num_stages: int

    @property
    def num_edges(self) -> int:
        return int(self.e_star_mask.sum())


def _per_node_bound(
    group_of_machine: np.ndarray, per_machine: np.ndarray, n: int
) -> np.ndarray:
    """Sum a per-machine quantity over each node's machine group."""
    out = np.zeros(n, dtype=np.float64)
    np.add.at(out, group_of_machine, per_machine)
    return out


def sparsify_edges(
    g: Graph,
    good: GoodNodesMatching,
    params: Params,
    ctx: MPCContext,
    fidelity: list[str],
) -> EdgeSparsifyResult:
    """Compute ``E* ⊆ E_0`` with per-node degree ``O(n^{4 delta})``."""
    i = good.i_star
    e_mask = good.e0_mask.copy()
    num_stages = max(0, i - 4)
    if num_stages == 0 or e_mask.sum() == 0:
        return EdgeSparsifyResult(
            e_star_mask=e_mask, stages=tuple(), num_stages=0
        )

    family = make_family(universe=max(g.m, 2), k=params.c, min_q=params.min_q)
    prob = params.sample_prob(g.n)
    chunk = params.chunk_size(g.n)
    deg0 = g.degrees_within(good.e0_mask).astype(np.float64)
    x0_u = good.in_x_of_u
    x0_v = good.in_x_of_v
    # |X(v)| per B-node at stage 0.
    x0_count = np.zeros(g.n, dtype=np.float64)
    np.add.at(x0_count, g.edges_u[x0_u], 1.0)
    np.add.at(x0_count, g.edges_v[x0_v], 1.0)

    stages: list[StageRecord] = []
    for j in range(1, num_stages + 1):
        eids = np.nonzero(e_mask)[0].astype(np.int64)
        items_before = int(eids.size)
        if items_before == 0:
            fidelity.append(f"edge sparsification stage {j}: E emptied; stopping")
            break

        # ---- type A machines: every node's incident E_{j-1} edges -------- #
        groups_a = np.concatenate([g.edges_u[eids], g.edges_v[eids]])
        units_a = np.concatenate([eids, eids])
        grouping_a = chunk_items_by_group(groups_a, chunk)

        # ---- type B machines: X(v) ∩ E_{j-1}, grouped by v in B ---------- #
        side_u = x0_u & e_mask
        side_v = x0_v & e_mask
        eid_bu = np.nonzero(side_u)[0].astype(np.int64)
        eid_bv = np.nonzero(side_v)[0].astype(np.int64)
        groups_b = np.concatenate([g.edges_u[eid_bu], g.edges_v[eid_bv]])
        units_b = np.concatenate([eid_bu, eid_bv])
        grouping_b = chunk_items_by_group(groups_b, chunk)

        # Distribution volume: one word per arc shipped to its group machine.
        ctx.charge_sort(
            "sparsify_distribute", words=int(groups_a.size + groups_b.size)
        )
        ctx.space.observe_loads(grouping_a.loads, "type-A edge distribution")
        ctx.space.observe_loads(grouping_b.loads, "type-B edge distribution")

        specs = [
            MachineGroupSpec(
                name="A", grouping=grouping_a, unit_ids=units_a,
                check_upper=True, check_lower=True,
            ),
            MachineGroupSpec(
                name="B", grouping=grouping_b, unit_ids=units_b,
                check_upper=False, check_lower=True,
            ),
            # Node-level windows: the per-node invariant the machine windows
            # are a proxy for (non-vacuous at finite sizes; see stage.py).
            node_level_spec(
                "A/node", groups_a, units_a, check_upper=True, check_lower=True
            ),
            node_level_spec(
                "B/node", groups_b, units_b, check_upper=False, check_lower=True
            ),
        ]
        stage_scan_start = 1 + (j - 1) * params.max_scan_trials
        outcome = run_stage_seed_search(
            family, prob, specs, params, g.n, fidelity, scan_start=stage_scan_start
        )
        ctx.charge_seed_fix(family.seed_bits, "sparsify_seed")

        sampled_edges = family.sample_indicator(outcome.seed, eids, prob)
        new_mask = np.zeros(g.m, dtype=bool)
        new_mask[eids[sampled_edges]] = True
        ctx.charge_broadcast("sparsify_apply")

        # ---- invariant measurements -------------------------------------- #
        # The node-level windows (specs[2]/[3]) give the per-node implied
        # bounds directly; one virtual machine per node.
        node_spec_a, node_spec_b = specs[2], specs[3]
        deg_j = g.degrees_within(new_mask).astype(np.float64)
        bound_deg = _per_node_bound(
            node_spec_a.grouping.group_of_machine,
            outcome.mus[2] + outcome.lambdas[2],
            g.n,
        )
        active = bound_deg > 0
        degree_bound_ratio = (
            float(np.max(deg_j[active] / bound_deg[active])) if active.any() else 0.0
        )

        retained = np.zeros(g.n, dtype=np.float64)
        keep_u = x0_u & new_mask
        keep_v = x0_v & new_mask
        np.add.at(retained, g.edges_u[keep_u], 1.0)
        np.add.at(retained, g.edges_v[keep_v], 1.0)
        lower = _per_node_bound(
            node_spec_b.grouping.group_of_machine,
            np.maximum(outcome.mus[3] - outcome.lambdas[3], 0.0),
            g.n,
        )
        lb_active = lower > 0
        retention_bound_ratio = (
            float(np.min(retained[lb_active] / lower[lb_active]))
            if lb_active.any()
            else float("inf")
        )

        ideal = outcome.p_real**j
        with np.errstate(divide="ignore", invalid="ignore"):
            nz = deg0 > 0
            decay_meas = float(np.mean(deg_j[nz] / deg0[nz])) if nz.any() else 0.0
            bnz = (x0_count > 0) & good.b_mask
            ret_meas = (
                float(np.mean(retained[bnz] / x0_count[bnz])) if bnz.any() else 0.0
            )

        stages.append(
            StageRecord(
                stage=j,
                kind="edges",
                items_before=items_before,
                items_after=int(new_mask.sum()),
                sample_prob=outcome.p_real,
                num_machines=grouping_a.num_machines + grouping_b.num_machines,
                max_load=max(grouping_a.max_load(), grouping_b.max_load()),
                seed=outcome.seed,
                trials=outcome.trials,
                slack_kappa=outcome.kappa,
                escalations=outcome.escalations,
                all_good=outcome.all_good,
                degree_bound_ratio=degree_bound_ratio,
                degree_decay_measured=decay_meas,
                degree_decay_ideal=ideal,
                retention_bound_ratio=retention_bound_ratio,
                retention_decay_measured=ret_meas,
                retention_decay_ideal=ideal,
            )
        )

        if new_mask.sum() == 0:
            fidelity.append(
                f"edge sparsification stage {j} emptied E*; keeping stage {j-1} set"
            )
            break
        e_mask = new_mask

    return EdgeSparsifyResult(
        e_star_mask=e_mask, stages=tuple(stages), num_stages=len(stages)
    )
