"""Deterministic MIS in O(log n) MPC rounds (Theorem 14).

Algorithm 3 of the paper::

    while |E(G)| > 0:
        add all isolated nodes to the MIS, remove them
        compute i, B and Q_0                       (good_nodes, Cor 15/16)
        select Q' ⊆ Q_0 inducing a low-degree subgraph    (sparsify, Sec 4.2)
        find I ⊆ Q' with covered weight Ω(|E|)            (Luby step, Sec 4.3)
        add I to the MIS, remove I ∪ N(I)

Each iteration removes ``>= delta^2 |E| / 400`` edges (Lemma-21 constants),
so ``O(log n)`` iterations suffice; remaining isolated nodes join at the end.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..mpc.context import MPCContext
from .good_nodes import good_nodes_mis
from .luby_step import luby_mis_step
from .params import Params
from .records import IterationRecord, MISResult
from .sparsify_nodes import sparsify_nodes

__all__ = ["deterministic_mis"]


def deterministic_mis(
    graph: Graph,
    params: Params | None = None,
    *,
    ctx: MPCContext | None = None,
    max_iterations: int | None = None,
) -> MISResult:
    """Run Algorithm 3 to completion; returns the MIS and full trace."""
    params = params or Params()
    ctx = ctx or MPCContext(
        n=graph.n,
        m=graph.m,
        eps=params.eps,
        space_factor=params.space_factor,
        total_factor=params.total_factor,
    )
    fidelity: list[str] = []
    records: list[IterationRecord] = []
    in_mis = np.zeros(graph.n, dtype=bool)
    removed = np.zeros(graph.n, dtype=bool)  # in MIS or dominated by it
    g = graph
    iteration = 0
    cap = max_iterations if max_iterations is not None else 64 + 16 * max(
        1, int(np.ceil(np.log2(max(graph.m, 2))))
    )

    while g.m > 0:
        iteration += 1
        if iteration > cap:
            raise RuntimeError(
                f"MIS failed to converge within {cap} iterations "
                f"({g.m} edges left); fidelity={fidelity}"
            )
        edges_before = g.m

        # Isolated nodes (not yet decided) join the MIS for free.
        iso = g.isolated_mask() & ~removed
        in_mis |= iso
        removed |= iso

        good = good_nodes_mis(g, params)
        ctx.charge_prefix_sum("good_nodes")
        ctx.charge_prefix_sum("good_nodes")
        ctx.charge_prefix_sum("good_nodes")

        spars = sparsify_nodes(g, good, params, ctx, fidelity)
        q_prime = spars.q_prime_mask
        if not q_prime.any():
            fidelity.append("Q' empty; falling back to Q0")
            q_prime = good.q0_mask

        i_mask, info = luby_mis_step(g, q_prime, good, params, ctx, fidelity)
        if not i_mask.any():
            raise AssertionError("Luby MIS step returned an empty set")

        # Remove I ∪ N(I).
        dominated = g.degrees_toward(i_mask) > 0
        kill = i_mask | dominated
        in_mis |= i_mask
        removed |= kill
        g = g.remove_vertices(kill)
        ctx.charge_broadcast("remove")

        records.append(
            IterationRecord(
                iteration=iteration,
                edges_before=edges_before,
                edges_after=g.m,
                i_star=good.i_star,
                num_good_nodes=good.num_good,
                weight_b=good.weight_b,
                stages=spars.stages,
                selection_value=info.selection.value,
                selection_target=info.target,
                selection_trials=info.selection.trials,
                selection_satisfied=info.selection.satisfied,
                seed_bits=info.seed_bits,
                nodes_removed=int(kill.sum()),
            )
        )

    # Graph is edgeless: every undecided node is isolated and joins the MIS.
    in_mis |= ~removed
    return MISResult(
        independent_set=np.nonzero(in_mis)[0].astype(np.int64),
        iterations=iteration,
        rounds=ctx.rounds,
        rounds_by_category=ctx.ledger.snapshot(),
        max_machine_words=ctx.space.max_machine_words,
        space_limit=ctx.S,
        words_moved=ctx.words_moved,
        records=tuple(records),
        fidelity_events=tuple(fidelity),
    )
