"""Deterministic maximal matching in O(log n) MPC rounds (Theorem 7).

Algorithm 2 of the paper::

    while |E(G)| > 0:
        compute i, B and E_0                      (good_nodes, Lemma 3/Cor 8)
        select E* ⊆ E_0 inducing a low-degree subgraph   (sparsify, Sec 3.2)
        find matching M ⊆ E* with covered weight Ω(|E|)  (Luby step, Sec 3.3)
        add M to the output, remove matched nodes

Each iteration costs O(1) charged MPC rounds and removes a constant fraction
of the edges (at least ``delta |E| / 536`` by the Lemma-13 constants), so
``O(log n)`` iterations / rounds suffice.  The run record captures the
per-iteration progress so T1/T3 benchmarks can verify both claims.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..mpc.context import MPCContext
from .good_nodes import good_nodes_matching
from .luby_step import luby_matching_step
from .params import Params
from .records import IterationRecord, MatchingResult
from .sparsify_edges import sparsify_edges

__all__ = ["deterministic_maximal_matching"]


def deterministic_maximal_matching(
    graph: Graph,
    params: Params | None = None,
    *,
    ctx: MPCContext | None = None,
    max_iterations: int | None = None,
) -> MatchingResult:
    """Run Algorithm 2 to completion; returns the matching and full trace."""
    params = params or Params()
    ctx = ctx or MPCContext(
        n=graph.n,
        m=graph.m,
        eps=params.eps,
        space_factor=params.space_factor,
        total_factor=params.total_factor,
    )
    fidelity: list[str] = []
    records: list[IterationRecord] = []
    pairs: list[np.ndarray] = []
    g = graph
    iteration = 0
    cap = max_iterations if max_iterations is not None else 64 + 8 * max(
        1, int(np.ceil(np.log2(max(graph.m, 2))))
    )

    while g.m > 0:
        iteration += 1
        if iteration > cap:
            raise RuntimeError(
                f"matching failed to converge within {cap} iterations "
                f"({g.m} edges left); fidelity={fidelity}"
            )
        edges_before = g.m

        good = good_nodes_matching(g, params)
        # Good-node computation: degrees, X-membership, class sums -- three
        # Lemma-4 aggregations (Section 3.1).
        ctx.charge_prefix_sum("good_nodes")
        ctx.charge_prefix_sum("good_nodes")
        ctx.charge_prefix_sum("good_nodes")

        spars = sparsify_edges(g, good, params, ctx, fidelity)
        e_star = spars.e_star_mask
        if not e_star.any():
            # Guarded fallback (cannot happen when B is non-empty, which
            # Corollary 8 guarantees; kept as defensive insurance).
            fidelity.append("E* empty; falling back to E0")
            e_star = good.e0_mask

        matched_eids, info = luby_matching_step(
            g, e_star, good, params, ctx, fidelity
        )
        if matched_eids.size == 0:
            # A strict-local-minimum edge always exists in a non-empty E*.
            raise AssertionError("Luby matching step returned no edges")

        mu = g.edges_u[matched_eids]
        mv = g.edges_v[matched_eids]
        pairs.append(np.stack([mu, mv], axis=1))
        removed_mask = np.zeros(g.n, dtype=bool)
        removed_mask[mu] = True
        removed_mask[mv] = True
        g = g.remove_vertices(removed_mask)
        ctx.charge_broadcast("remove")

        records.append(
            IterationRecord(
                iteration=iteration,
                edges_before=edges_before,
                edges_after=g.m,
                i_star=good.i_star,
                num_good_nodes=good.num_good,
                weight_b=good.weight_b,
                stages=spars.stages,
                selection_value=info.selection.value,
                selection_target=info.target,
                selection_trials=info.selection.trials,
                selection_satisfied=info.selection.satisfied,
                seed_bits=info.seed_bits,
                nodes_removed=int(removed_mask.sum()),
            )
        )

    all_pairs = (
        np.concatenate(pairs, axis=0) if pairs else np.empty((0, 2), dtype=np.int64)
    )
    return MatchingResult(
        pairs=all_pairs,
        iterations=iteration,
        rounds=ctx.rounds,
        rounds_by_category=ctx.ledger.snapshot(),
        max_machine_words=ctx.space.max_machine_words,
        space_limit=ctx.S,
        words_moved=ctx.words_moved,
        records=tuple(records),
        fidelity_events=tuple(fidelity),
    )
