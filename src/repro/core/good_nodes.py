"""Good-node selection: sets ``X``/``A``, degree classes ``C_i``, ``B_i``.

Matching (Section 3): ``X`` is the set of nodes ``v`` with at least
``d(v)/3`` neighbours ``u`` of degree ``d(u) <= d(v)``; Lemma 3 gives
``sum_{v in X} d(v) >= |E| / 2``.  Nodes are split into degree classes
``C_i = {v : n^{(i-1)delta} <= d(v) < n^{i delta}}`` and ``B_i = C_i ∩ X``;
Corollary 8 picks a class with ``sum_{v in B_i} d(v) >= delta |E| / 2``
(we take the argmax class).  The per-node edge sets
``X(v) = {{u,v} in E : d(u) <= d(v)}`` seed the sparsification.

MIS (Section 4): ``A = {v : sum_{u ~ v} 1/d(u) >= 1/3}`` (Corollary 15:
``sum_{v in A} d(v) >= |E| / 2`` since ``X ⊆ A``), and
``B_i = {v : sum_{u in C_i ~ v} 1/d(u) >= delta/3}``; Corollary 16 again
guarantees a class of weight ``>= delta |E| / 2``.  Here ``Q_0 = C_{i*}`` is
the node set to sparsify.

Implementation notes: everything is whole-array numpy over the CSR edge
arrays; isolated vertices never enter any class.  The MPC cost is a constant
number of Lemma-4 primitives (degree counting, neighbourhood aggregation,
class-weight aggregation) charged by the caller.

The integer accounting (low-degree neighbour counts) runs on ``bincount``
kernels -- exact and an order of magnitude faster than the ``np.add.at``
scatters they replaced.  The MIS side's class-weighted neighbourhood sums
(``sum of 1/d(u)`` per class) go through the graph's cached scipy CSR
adjacency as one sparse mat-mat product under the default ``csr`` backend;
``backend="legacy"`` keeps the original scatter loop (float accumulation
order differs between the two at the 1e-16 level, far inside the 1e-12
threshold guards).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.graph import Graph
from ..graphs.kernels import HAS_SCIPY, resolve_backend
from .params import Params

__all__ = [
    "GoodNodesMatching",
    "GoodNodesMIS",
    "degree_class_of",
    "good_nodes_matching",
    "good_nodes_mis",
]


def degree_class_of(degrees: np.ndarray, n: int, delta: float) -> np.ndarray:
    """int64[n] class index in ``[1, 1/delta]`` (0 for isolated vertices).

    ``C_i`` contains degrees in ``[n^{(i-1) delta}, n^{i delta})``.
    """
    d = np.asarray(degrees, dtype=np.float64)
    base = max(n, 2)
    cls = np.zeros(d.size, dtype=np.int64)
    pos = d > 0
    # i - 1 = floor(log_n(d) / delta); the 1e-9 guards exact powers.
    with np.errstate(divide="ignore"):
        exact = np.log(d[pos]) / (delta * np.log(base))
    cls[pos] = np.floor(exact + 1e-9).astype(np.int64) + 1
    num_classes = max(1, int(np.ceil(1.0 / delta - 1e-9)))
    np.clip(cls, 0, num_classes, out=cls)
    return cls


@dataclass(frozen=True)
class GoodNodesMatching:
    """Output of the Section-3 good-node computation."""

    i_star: int  # chosen degree class (1-based)
    b_mask: np.ndarray  # bool[n]: v in B = C_{i*} ∩ X
    x_mask: np.ndarray  # bool[n]: v in X
    e0_mask: np.ndarray  # bool[m]: edge in E_0 = union of X(v), v in B
    in_x_of_u: np.ndarray  # bool[m]: edge counts toward X(edges_u[e])
    in_x_of_v: np.ndarray  # bool[m]: edge counts toward X(edges_v[e])
    weight_b: float  # sum_{v in B} d(v)
    class_of: np.ndarray  # int64[n]

    @property
    def num_good(self) -> int:
        return int(self.b_mask.sum())


def good_nodes_matching(g: Graph, params: Params) -> GoodNodesMatching:
    """Compute ``i*``, ``B`` and ``E_0`` for the matching algorithm."""
    deg = g.degrees()
    n, delta = g.n, params.delta_value
    # |{u ~ v : d(u) <= d(v)}| per v, vectorised over edges (exact int64
    # bincounts; no scatter `.at` calls on the hot path).
    low_count = np.zeros(n, dtype=np.int64)
    if g.m:
        du = deg[g.edges_u]
        dv = deg[g.edges_v]
        low_count += np.bincount(g.edges_u[dv <= du], minlength=n)
        low_count += np.bincount(g.edges_v[du <= dv], minlength=n)
    x_mask = (3 * low_count >= deg) & (deg > 0)

    class_of = degree_class_of(deg, n, delta)
    num_classes = max(1, int(np.ceil(1.0 / delta - 1e-9)))
    in_b_any = x_mask  # B_i = C_i ∩ X partitions X by class
    weights = np.bincount(
        class_of[in_b_any],
        weights=deg[in_b_any].astype(np.float64),
        minlength=num_classes + 1,
    )
    i_star = int(np.argmax(weights[1:])) + 1 if weights[1:].size else 1
    b_mask = x_mask & (class_of == i_star)

    if g.m:
        du = deg[g.edges_u]
        dv = deg[g.edges_v]
        in_x_of_u = b_mask[g.edges_u] & (dv <= du)
        in_x_of_v = b_mask[g.edges_v] & (du <= dv)
        e0_mask = in_x_of_u | in_x_of_v
    else:
        in_x_of_u = np.zeros(0, dtype=bool)
        in_x_of_v = np.zeros(0, dtype=bool)
        e0_mask = np.zeros(0, dtype=bool)

    return GoodNodesMatching(
        i_star=i_star,
        b_mask=b_mask,
        x_mask=x_mask,
        e0_mask=e0_mask,
        in_x_of_u=in_x_of_u,
        in_x_of_v=in_x_of_v,
        weight_b=float(deg[b_mask].sum()),
        class_of=class_of,
    )


@dataclass(frozen=True)
class GoodNodesMIS:
    """Output of the Section-4 good-node computation."""

    i_star: int
    b_mask: np.ndarray  # bool[n]: v in B_{i*}
    a_mask: np.ndarray  # bool[n]: v in A
    q0_mask: np.ndarray  # bool[n]: v in Q_0 = C_{i*}
    weight_b: float  # sum_{v in B} d(v)
    class_of: np.ndarray  # int64[n]
    inv_deg_toward_q0: np.ndarray  # float64[n]: sum_{u in Q0 ~ v} 1/d(u)

    @property
    def num_good(self) -> int:
        return int(self.b_mask.sum())


def good_nodes_mis(
    g: Graph, params: Params, *, backend: str | None = None
) -> GoodNodesMIS:
    """Compute ``i*``, ``B``, ``Q_0`` for the MIS algorithm (Section 4.1)."""
    deg = g.degrees()
    n, delta = g.n, params.delta_value
    num_classes = max(1, int(np.ceil(1.0 / delta - 1e-9)))
    class_of = degree_class_of(deg, n, delta)

    inv_deg = np.zeros(n, dtype=np.float64)
    nz = deg > 0
    inv_deg[nz] = 1.0 / deg[nz]

    # acc[v, i] = sum of 1/d(u) over neighbours u of v in class i.
    if g.m and HAS_SCIPY and resolve_backend(backend) != "legacy":
        # One sparse mat-mat product against the class-indicator weights:
        # W[u, i] = 1/d(u) iff class_of[u] == i, so (A @ W)[v, i] is exactly
        # the class-i neighbourhood sum.
        w = np.zeros((n, num_classes + 1), dtype=np.float64)
        w[np.arange(n), class_of] = inv_deg
        acc = np.asarray(g.adjacency_csr() @ w)
    else:
        acc = np.zeros((n, num_classes + 1), dtype=np.float64)
        if g.m:
            eu, ev = g.edges_u, g.edges_v
            np.add.at(acc, (eu, class_of[ev]), inv_deg[ev])
            np.add.at(acc, (ev, class_of[eu]), inv_deg[eu])
    total = acc.sum(axis=1)
    a_mask = (total >= 1.0 / 3.0 - 1e-12) & (deg > 0)

    b_masks = acc[:, 1:] >= (delta / 3.0 - 1e-12)  # (n, num_classes)
    b_masks &= (deg > 0)[:, None]
    weights = (b_masks * deg[:, None].astype(np.float64)).sum(axis=0)
    i_star = int(np.argmax(weights)) + 1 if weights.size else 1
    b_mask = b_masks[:, i_star - 1]
    q0_mask = (class_of == i_star) & (deg > 0)

    return GoodNodesMIS(
        i_star=i_star,
        b_mask=b_mask,
        a_mask=a_mask,
        q0_mask=q0_mask,
        weight_b=float(deg[b_mask].sum()),
        class_of=class_of,
        inv_deg_toward_q0=acc[:, i_star],
    )
