"""Model-generic derandomized-Luby phase kernel.

One Luby phase is the same computation in every model: rank the live
vertices by a seeded hash key, put local minima into the independent set,
kill them and their neighbours.  What differs per model is only (a) how the
key is built (node ids in the clique, colors in CONGEST's compressed mode)
and (b) what the phase *costs* — which is the
:class:`~repro.models.ledger.RoundLedgerProtocol`'s job, not this module's.

:class:`LubyPhaseKernel` owns the per-residual-graph segment reducers and
evaluates whole seed blocks at once (the PR-3 batched seed-search shape),
so every model's phase loop is the same three lines: build keys, call
:meth:`masks`, apply the kill.
"""

from __future__ import annotations

import numpy as np

from ..graphs.graph import Graph
from ..graphs.kernels import segment_any_block_fn, segment_min_block_fn

__all__ = ["LubyPhaseKernel", "MAXKEY"]

#: Sentinel key larger than any real ``hash * stride + id`` key.
MAXKEY = np.uint64(2**63 - 1)


class LubyPhaseKernel:
    """Segment reducers for one residual graph, reusable across seed blocks.

    Parameters
    ----------
    g:
        The residual graph (vertex set of size ``n`` with dead vertices
        isolated, as produced by ``Graph.remove_vertices``).
    n:
        The ambient vertex count every mask is shaped against.
    """

    def __init__(self, g: Graph, n: int) -> None:
        self.n = n
        self.live = g.degrees() > 0
        self._nbr_min = segment_min_block_fn(g.indices, g.indptr, n)
        self._nbr_any = segment_any_block_fn(g.indices, g.indptr, n)

    def masks(
        self, key: np.ndarray, live: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(i_mask, kill)`` bool ``(S, n)`` blocks for a key block.

        ``key`` is ``uint64 (S, n)`` — strict-total-order keys with dead
        columns at :data:`MAXKEY`.  A vertex joins the independent set when
        it is live and strictly smaller than all its neighbours; it is
        killed when it joins or any neighbour does.
        """
        live_mask = self.live if live is None else live
        nbr_min = self._nbr_min(key, MAXKEY)
        i_mask = live_mask[None, :] & (key < nbr_min)
        covered = self._nbr_any(i_mask)
        return i_mask, i_mask | covered
