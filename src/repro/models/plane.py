"""Struct-of-arrays message planes for the columnar round core.

The legacy engine path moves one Python object per message: a round that
delivers ``k`` partials costs ``O(k)`` interpreter work for word counting,
inbox appends and storage rebuilds.  The columnar path replaces that with
two array types:

* :class:`Plane` — a *resident* batch: a tagged ``(k, w)`` int64 matrix
  living in a machine's storage.  Row ``i`` stands for the legacy tuple
  ``(tag, data[i, 0], ..., data[i, w-1])``, so its space charge is
  ``k * (w + 1)`` words — bit-identical to storing the ``k`` tuples
  item-by-item (the tag costs one word, exactly as the tuple's first slot
  does).
* :class:`MessageBlock` — an *in-flight* batch: the same matrix plus a
  ``dest`` column.  The engine routes a block with one stable argsort of
  ``dest`` and a ``searchsorted`` split instead of a per-message dispatch
  loop, so routing cost is ``O(k log k)`` vectorised work plus ``O(M)``
  Python — independent of the message count at the interpreter level.

Both shapes are deliberately dumb containers: every model-semantic check
(per-round send/receive capacity, storage ceilings, destination validation)
stays in the engine so the columnar and object paths share one rule book.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "ENGINE_BACKENDS",
    "DEFAULT_ENGINE_BACKEND",
    "MessageBlock",
    "Plane",
    "concat_planes",
    "resolve_engine_backend",
    "route_block",
]

ENGINE_BACKENDS = ("columnar", "legacy")
DEFAULT_ENGINE_BACKEND = "columnar"


def resolve_engine_backend(backend: str | None = None) -> str:
    """Resolve the round-execution backend (``REPRO_ENGINE_BACKEND``).

    ``columnar`` runs rounds over packed :class:`Plane` buffers;
    ``legacy`` keeps the object-granular step functions.  Both produce
    bit-identical results; only the interpreter cost differs.
    """
    resolved = backend or os.environ.get(
        "REPRO_ENGINE_BACKEND", DEFAULT_ENGINE_BACKEND
    )
    if resolved not in ENGINE_BACKENDS:
        raise ValueError(
            f"unknown engine backend {resolved!r}; expected one of {ENGINE_BACKENDS}"
        )
    return resolved


def _as_matrix(data: np.ndarray) -> np.ndarray:
    arr = np.asarray(data, dtype=np.int64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError(f"plane data must be 1-D or 2-D, got shape {arr.shape}")
    return arr


class Plane:
    """A tagged ``(rows, width)`` int64 batch resident in machine storage.

    ``word_cost`` matches the legacy representation exactly: each row is
    the tuple ``(tag, *row)`` and therefore costs ``width + 1`` words.
    """

    __slots__ = ("tag", "data")

    def __init__(self, tag: str, data: np.ndarray) -> None:
        self.tag = tag
        self.data = _as_matrix(data)

    @property
    def rows(self) -> int:
        return int(self.data.shape[0])

    @property
    def width(self) -> int:
        return int(self.data.shape[1])

    @property
    def word_cost(self) -> int:
        return self.rows * (self.width + 1)

    def col(self, j: int) -> np.ndarray:
        return self.data[:, j]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Plane({self.tag!r}, rows={self.rows}, width={self.width})"


class MessageBlock:
    """A batch of same-tag messages: row ``i`` travels to ``dest[i]``.

    The empty tag ``""`` marks *raw scalar* payloads: single-column rows
    that stand for bare integers (the arc streams of the sort/partition
    primitives), cost one word each, and are delivered as plain 1-D arrays
    rather than tagged planes -- matching the object path, where a bare
    ``int`` message costs 1 word while a ``(tag, value)`` tuple costs 2.
    """

    __slots__ = ("tag", "dest", "data")

    def __init__(self, tag: str, dest: np.ndarray, data: np.ndarray) -> None:
        self.tag = tag
        self.dest = np.asarray(dest, dtype=np.int64)
        self.data = _as_matrix(data)
        if self.dest.ndim != 1 or self.dest.shape[0] != self.data.shape[0]:
            raise ValueError(
                f"dest has shape {self.dest.shape} but data has "
                f"{self.data.shape[0]} rows"
            )
        if tag == "" and self.data.shape[1] != 1:
            raise ValueError("raw scalar blocks (tag='') must be single-column")

    @property
    def rows(self) -> int:
        return int(self.data.shape[0])

    @property
    def width(self) -> int:
        return int(self.data.shape[1])

    @property
    def words_per_row(self) -> int:
        return self.width + (1 if self.tag else 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MessageBlock({self.tag!r}, rows={self.rows}, width={self.width})"


def route_block(
    block: MessageBlock, num_machines: int
) -> list[tuple[int, Plane]]:
    """Split a block into per-destination planes with one argsort.

    Returns ``(machine, plane)`` pairs for every machine that receives at
    least one row.  Raises ``ValueError`` on any out-of-range destination —
    the same contract as the object path's per-message check.
    """
    dest = block.dest
    if dest.size == 0:
        return []
    lo, hi = int(dest.min()), int(dest.max())
    if lo < 0 or hi >= num_machines:
        bad = lo if lo < 0 else hi
        raise ValueError(f"message to nonexistent machine {bad}")
    order = np.argsort(dest, kind="stable")
    sorted_dest = dest[order]
    receivers = np.unique(sorted_dest)
    bounds = np.searchsorted(sorted_dest, receivers, side="left")
    ends = np.searchsorted(sorted_dest, receivers, side="right")
    out: list[tuple[int, Plane]] = []
    for mid, start, stop in zip(receivers.tolist(), bounds.tolist(), ends.tolist()):
        out.append((mid, Plane(block.tag, block.data[order[start:stop]])))
    return out


def concat_planes(items: list, tag: str, width: int) -> np.ndarray:
    """All rows of the ``tag`` planes in ``items``, machine-delivery order.

    Returns an ``(k, width)`` matrix (empty when no plane matches); callers
    reduce over it with order-free operations (min / unique / any), so the
    concatenation order never leaks into results.
    """
    parts = [it.data for it in items if isinstance(it, Plane) and it.tag == tag]
    if not parts:
        return np.empty((0, width), dtype=np.int64)
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts, axis=0)
