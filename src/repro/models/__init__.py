"""Columnar round-execution core shared by the three machine-model simulators.

The paper charges one algorithm against three models -- low-space MPC,
CONGESTED CLIQUE and CONGEST.  This package is the model-generic substrate:

* :mod:`repro.models.plane` -- struct-of-arrays message planes and the
  argsort + ``searchsorted`` router behind
  :meth:`repro.mpc.engine.MPCEngine.round_packed`, plus the
  ``REPRO_ENGINE_BACKEND`` (``columnar`` | ``legacy``) resolver.
* :mod:`repro.models.ledger` -- the :class:`RoundLedgerProtocol` every
  simulator implements and the :class:`ModelSnapshot` record the
  cross-model report renders.
* :mod:`repro.models.phase` -- the derandomized-Luby phase kernel the
  clique and CONGEST solvers share.
* :mod:`repro.models.crossmodel` -- run one problem under all three cost
  models and collect the snapshots side by side (imported lazily: it pulls
  in every simulator, and the simulators import this package).
"""

from .ledger import ModelSnapshot, RoundLedgerProtocol
from .phase import MAXKEY, LubyPhaseKernel
from .plane import (
    DEFAULT_ENGINE_BACKEND,
    ENGINE_BACKENDS,
    MessageBlock,
    Plane,
    concat_planes,
    resolve_engine_backend,
    route_block,
)

__all__ = [
    "DEFAULT_ENGINE_BACKEND",
    "ENGINE_BACKENDS",
    "MAXKEY",
    "CrossModelRun",
    "LubyPhaseKernel",
    "MessageBlock",
    "ModelSnapshot",
    "Plane",
    "RoundLedgerProtocol",
    "concat_planes",
    "cross_model_run",
    "resolve_engine_backend",
    "route_block",
]

_LAZY = ("CrossModelRun", "cross_model_run")


def __getattr__(name: str):
    # crossmodel imports the simulators, which import this package; resolve
    # its symbols lazily to keep the import graph acyclic.
    if name in _LAZY:
        from . import crossmodel

        return getattr(crossmodel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
