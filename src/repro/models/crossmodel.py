"""Run one problem under all three cost models and collect the bills.

This is the payoff of the shared
:class:`~repro.models.ledger.RoundLedgerProtocol`: the same input graph is
solved by the low-space MPC driver, the CONGESTED CLIQUE solver and the
CONGEST solver, each charging its own context, and the three
:class:`~repro.models.ledger.ModelSnapshot`s come back side by side for
:func:`repro.analysis.report.cross_model_report` (and the ``cross-model``
workload suite) to render.

The solutions are *not* expected to coincide across models -- each model
runs its own deterministic algorithm -- but each is verified against the
input graph, so the run certifies three valid solutions plus three
comparable round/communication bills.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cclique.mis_cc import cc_maximal_matching, cc_mis
from ..congest.mis_congest import congest_maximal_matching, congest_mis
from ..core.api import uses_lowdeg_path
from ..core.lowdeg import lowdeg_maximal_matching, lowdeg_mis
from ..core.matching import deterministic_maximal_matching
from ..core.mis import deterministic_mis
from ..core.params import Params
from ..graphs.graph import Graph
from ..mpc.context import MPCContext
from ..verify import verify_matching_pairs, verify_mis_nodes
from .ledger import ModelSnapshot

__all__ = ["CrossModelRun", "cross_model_run"]


@dataclass(frozen=True)
class CrossModelRun:
    """One problem solved under every cost model."""

    problem: str  # "mis" | "matching"
    graph_n: int
    graph_m: int
    snapshots: tuple[ModelSnapshot, ...]
    solution_sizes: tuple[tuple[str, int], ...]
    all_verified: bool

    def snapshot_for(self, model: str) -> ModelSnapshot:
        for snap in self.snapshots:
            if snap.model == model:
                return snap
        raise KeyError(f"no snapshot for model {model!r}")

    def to_dict(self) -> dict:
        return {
            "problem": self.problem,
            "graph_n": self.graph_n,
            "graph_m": self.graph_m,
            "snapshots": [s.to_dict() for s in self.snapshots],
            "solution_sizes": {k: v for k, v in self.solution_sizes},
            "all_verified": self.all_verified,
        }


def _mpc_solve(graph: Graph, problem: str, params: Params):
    """Solve on the MPC accounting layer with an injected context."""
    ctx = MPCContext(
        n=graph.n,
        m=graph.m,
        eps=params.eps,
        space_factor=params.space_factor,
        total_factor=params.total_factor,
    )
    if problem == "mis":
        if uses_lowdeg_path(graph, params):
            res = lowdeg_mis(graph, params, ctx=ctx)
        else:
            res = deterministic_mis(graph, params, ctx=ctx)
        ok = bool(verify_mis_nodes(graph, res.independent_set))
        size = int(res.independent_set.size)
    else:
        if uses_lowdeg_path(graph, params, for_matching=True):
            res = lowdeg_maximal_matching(graph, params, ctx=ctx)
        else:
            res = deterministic_maximal_matching(graph, params, ctx=ctx)
        ok = bool(verify_matching_pairs(graph, res.pairs))
        size = int(res.pairs.shape[0])
    return ctx.model_snapshot(), size, ok


def cross_model_run(
    graph: Graph,
    problem: str = "mis",
    *,
    params: Params | None = None,
    max_scan_trials: int = 512,
) -> CrossModelRun:
    """Solve ``problem`` on ``graph`` under MPC, CLIQUE and CONGEST.

    Returns the three model snapshots plus per-model solution sizes and a
    combined verification flag.
    """
    if problem not in ("mis", "matching"):
        raise ValueError(f"cross-model problem must be mis|matching, got {problem!r}")
    params = params or Params()

    mpc_snap, mpc_size, mpc_ok = _mpc_solve(graph, problem, params)

    if problem == "mis":
        cc = cc_mis(graph, max_scan_trials=max_scan_trials)
        cc_ok = bool(verify_mis_nodes(graph, cc.solution))
        cc_size = int(cc.solution.size)
        cg = congest_mis(graph, max_scan_trials=max_scan_trials)
        cg_ok = bool(verify_mis_nodes(graph, cg.independent_set))
        cg_size = int(cg.independent_set.size)
        cg_snap = cg.snapshot
    else:
        cc = cc_maximal_matching(graph, max_scan_trials=max_scan_trials)
        cc_ok = bool(verify_matching_pairs(graph, cc.solution))
        cc_size = int(cc.solution.shape[0])
        cg = congest_maximal_matching(graph, max_scan_trials=max_scan_trials)
        if graph.m:
            eids = cg.independent_set
            pairs = np.stack([graph.edges_u[eids], graph.edges_v[eids]], axis=1)
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        cg_ok = bool(verify_matching_pairs(graph, pairs))
        cg_size = int(pairs.shape[0])
        # Matching in CONGEST runs MIS on the line graph; the snapshot's
        # graph detail therefore describes the line graph, which is the
        # honest communication structure of the simulated run.
        cg_snap = cg.snapshot

    snaps = (mpc_snap, cc.snapshot, cg_snap)
    return CrossModelRun(
        problem=problem,
        graph_n=graph.n,
        graph_m=graph.m,
        snapshots=tuple(s for s in snaps if s is not None),
        solution_sizes=(
            ("mpc", mpc_size),
            ("congested-clique", cc_size),
            ("congest", cg_size),
        ),
        all_verified=bool(mpc_ok and cc_ok and cg_ok),
    )
