"""Run one problem under all cost models and collect the bills.

This is a thin loop over the :data:`repro.api.REGISTRY`: for every model
registered for the problem, one :func:`repro.api.solve` call produces a
:class:`~repro.api.SolveResult`, and the
:class:`~repro.models.ledger.ModelSnapshot`s come back side by side for
:func:`repro.analysis.report.cross_model_report` (and the ``cross-model``
workload suite) to render.  There is no per-model dispatch here — a new
model registered for the problem shows up as a new row automatically.

The solutions are *not* expected to coincide across models -- each model
runs its own deterministic algorithm -- but each is verified against the
input graph (the facade's certificate), so the run certifies one valid
solution plus one comparable round/communication bill per model.

The default row set matches the paper's three accounting models (MPC,
CONGESTED CLIQUE, CONGEST); ``include_engine=True`` adds the literal
message-passing engine as a fourth row for problems it supports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.params import Params
from ..graphs.graph import Graph
from .ledger import ModelSnapshot

__all__ = ["CrossModelRun", "cross_model_run"]

#: Facade model keys in display order (the engine row is opt-in).
_DEFAULT_MODELS = ("simulated", "cclique", "congest")


@dataclass(frozen=True)
class CrossModelRun:
    """One problem solved under every cost model."""

    problem: str  # "mis" | "matching"
    graph_n: int
    graph_m: int
    snapshots: tuple[ModelSnapshot, ...]
    solution_sizes: tuple[tuple[str, int], ...]
    all_verified: bool
    #: Per-model wall time and (when traced) span counts, in row order.
    timings: tuple[tuple[str, dict], ...] = ()

    def snapshot_for(self, model: str) -> ModelSnapshot:
        for snap in self.snapshots:
            if snap.model == model:
                return snap
        raise KeyError(f"no snapshot for model {model!r}")

    def to_dict(self) -> dict:
        return {
            "problem": self.problem,
            "graph_n": self.graph_n,
            "graph_m": self.graph_m,
            "snapshots": [s.to_dict() for s in self.snapshots],
            "solution_sizes": {k: v for k, v in self.solution_sizes},
            "all_verified": self.all_verified,
            "timings": {k: v for k, v in self.timings},
        }


def cross_model_run(
    graph: Graph,
    problem: str = "mis",
    *,
    params: Params | None = None,
    max_scan_trials: int | None = None,
    include_engine: bool = False,
) -> CrossModelRun:
    """Solve ``problem`` on ``graph`` under every registered cost model.

    Returns the model snapshots plus per-model solution sizes and a
    combined verification flag.  Rows come straight from the solver
    registry: the MPC accounting layer, CONGESTED CLIQUE and CONGEST by
    default, plus the literal MPC engine with ``include_engine=True``.

    ``max_scan_trials`` (when given) overrides ``params.max_scan_trials``
    for *every* row; with ``None`` the params value governs all rows.
    """
    from ..api import REGISTRY, SolveRequest, solve

    if problem not in ("mis", "matching"):
        raise ValueError(f"cross-model problem must be mis|matching, got {problem!r}")
    params = params or Params()
    if max_scan_trials is not None:
        params = params.with_(max_scan_trials=max_scan_trials)

    models = _DEFAULT_MODELS + (("mpc-engine",) if include_engine else ())
    snapshots: list[ModelSnapshot] = []
    sizes: list[tuple[str, int]] = []
    timings: list[tuple[str, dict]] = []
    all_verified = True
    for model in models:
        if (problem, model) not in REGISTRY:
            continue
        res = solve(SolveRequest(problem=problem, model=model, graph=graph, params=params))
        all_verified = all_verified and res.verified
        if res.snapshot is not None:
            snapshots.append(res.snapshot)
            sizes.append((res.snapshot.model, res.solution_size))
            timing = {"wall_time": res.wall_time}
            if res.trace is not None:
                timing["trace_spans"] = len(res.trace)
            timings.append((res.snapshot.model, timing))

    return CrossModelRun(
        problem=problem,
        graph_n=graph.n,
        graph_m=graph.m,
        snapshots=tuple(snapshots),
        solution_sizes=tuple(sizes),
        all_verified=all_verified,
        timings=tuple(timings),
    )
