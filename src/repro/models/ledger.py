"""The shared ``RoundLedger`` protocol unifying the three cost models.

The paper states each algorithm once and charges it against three machine
models — low-space MPC, CONGESTED CLIQUE and CONGEST.  Before this module
each simulator kept a hand-rolled charge API; now they all implement one
protocol:

* ``rounds`` — total rounds charged so far (monotone non-decreasing);
* ``words_moved`` — total communication volume in ``O(log n)``-bit words
  (message count × message width for the literal engine; the model's
  per-primitive message count for the accounting contexts);
* ``space_ceiling`` / ``bandwidth_ceiling`` — the model's hard limits
  (``S`` words per machine and per round in MPC; ``n`` messages per node
  per round in the clique; one word per edge per round in CONGEST), or
  ``None`` where the model leaves the axis unbounded;
* ``charge(category, rounds, words=...)`` — per-category accounting;
* ``model_snapshot()`` — a frozen, JSON-able :class:`ModelSnapshot` that
  :func:`repro.analysis.report.cross_model_report` renders side by side.

Implementors: :class:`repro.mpc.engine.MPCEngine` (literal message
passing), :class:`repro.mpc.context.MPCContext` (vectorised accounting),
:class:`repro.cclique.model.CongestedCliqueContext` and
:class:`repro.congest.model.CongestContext`.  The protocol is
``runtime_checkable`` so tests can assert conformance structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

__all__ = ["ModelSnapshot", "RoundLedgerProtocol"]


@dataclass(frozen=True)
class ModelSnapshot:
    """One model's round/communication bill, in a model-agnostic shape."""

    model: str  # "mpc" | "mpc-engine" | "congested-clique" | "congest"
    rounds: int
    words_moved: int
    by_category: dict[str, int] = field(default_factory=dict)
    space_ceiling: int | None = None
    bandwidth_ceiling: int | None = None
    max_words_seen: int = 0
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "rounds": self.rounds,
            "words_moved": self.words_moved,
            "by_category": dict(self.by_category),
            "space_ceiling": self.space_ceiling,
            "bandwidth_ceiling": self.bandwidth_ceiling,
            "max_words_seen": self.max_words_seen,
            "detail": dict(self.detail),
        }

    def symbol_row(self) -> dict:
        """Symbol values this bill pins down, keyed by the shared
        vocabulary of :mod:`repro.obs.symbolic` (``machines``, ``space``,
        ``seed_bits``, ``gamma``, ``depth``).  Only axes the model
        actually fixed are reported — the symbolic checker treats absent
        symbols as unmeasurable rather than guessing.
        """
        out: dict = {}
        if self.detail.get("num_machines"):
            out["machines"] = int(self.detail["num_machines"])
        if self.space_ceiling is not None:
            out["space"] = int(self.space_ceiling)
        if self.detail.get("seed_bits"):
            out["seed_bits"] = int(self.detail["seed_bits"])
        if self.detail.get("eps") is not None:
            out["gamma"] = float(self.detail["eps"])
        if self.detail.get("bfs_depth"):
            out["depth"] = int(self.detail["bfs_depth"])
        return out

    @staticmethod
    def from_dict(d: dict) -> "ModelSnapshot":
        return ModelSnapshot(
            model=d["model"],
            rounds=int(d["rounds"]),
            words_moved=int(d["words_moved"]),
            by_category={k: int(v) for k, v in d.get("by_category", {}).items()},
            space_ceiling=d.get("space_ceiling"),
            bandwidth_ceiling=d.get("bandwidth_ceiling"),
            max_words_seen=int(d.get("max_words_seen", 0)),
            detail=dict(d.get("detail", {})),
        )


@runtime_checkable
class RoundLedgerProtocol(Protocol):
    """What every model simulator exposes to the cross-model layer."""

    @property
    def rounds(self) -> int: ...

    @property
    def words_moved(self) -> int: ...

    @property
    def space_ceiling(self) -> int | None: ...

    @property
    def bandwidth_ceiling(self) -> int | None: ...

    def charge(self, category: str, rounds: int = 1, *, words: int = 0) -> None: ...

    def rounds_by_category(self) -> dict[str, int]: ...

    def model_snapshot(self) -> ModelSnapshot: ...
