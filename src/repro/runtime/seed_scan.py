"""Chunk-parallel deterministic seed scan (opt-in runtime for large families).

The batched seed-search engine (:mod:`repro.derand.strategies`) evaluates
seed blocks serially with early exit.  When a single stage's family scan is
the wall-clock bottleneck -- huge machine groups, large ``max_scan_trials``
-- this module farms the same fixed-size seed blocks to the process pool
machinery the batch runtime already uses (``ProcessPoolExecutor``, as in
:class:`repro.runtime.scheduler.Scheduler`), then folds the evaluated
blocks *in canonical scan order* through the exact same
:func:`~repro.derand.strategies.fold_scan` the serial engine uses.

Determinism: workers may finish out of order and blocks past the first
satisfying seed are evaluated speculatively, but the fold resolves the
first satisfying seed in scan order and counts trials as the serial scan
would -- the returned :class:`~repro.derand.strategies.SeedSelection` is
bit-identical to a serial ``strategy="scan"`` run of the same objective.

The kernel must be a *top-level* function ``kernel(payload, seeds) ->
float64[S]`` (picklable by reference) and ``payload`` a picklable dict of
arrays/scalars; closures over graph state cannot cross process boundaries.
:func:`repro.core.stage.stage_goodness_kernel` is the canonical instance.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable

import numpy as np

from ..derand.strategies import (
    SeedSelection,
    fold_scan,
    iter_seed_blocks,
    resolve_seed_chunk,
    scan_regions,
)

__all__ = ["parallel_scan"]

#: Kernel protocol: ``(payload, int64 seed block) -> float64 value block``.
ScanKernel = Callable[[dict, np.ndarray], np.ndarray]

#: Per-worker state installed by the pool initializer: the kernel and its
#: payload ship once per worker process, not once per submitted block (the
#: payload carries whole per-group arrays and sparse matrices).
_worker_state: tuple[ScanKernel, dict] | None = None


def _init_worker(kernel: ScanKernel, payload: dict) -> None:
    global _worker_state
    _worker_state = (kernel, payload)


def _eval_block(lo: int, hi: int) -> np.ndarray:
    """Worker entry point: evaluate one contiguous seed block."""
    assert _worker_state is not None, "pool initializer did not run"
    kernel, payload = _worker_state
    return np.asarray(
        kernel(payload, np.arange(lo, hi, dtype=np.int64)), dtype=np.float64
    )


def parallel_scan(
    kernel: ScanKernel,
    payload: dict,
    family_size: int,
    *,
    target: float,
    max_trials: int = 512,
    start: int = 0,
    chunk_size: int | None = None,
    workers: int = 2,
) -> SeedSelection:
    """Scan ``[0, family_size)`` for a seed with ``kernel(...) >= target``.

    Seed blocks of ``chunk_size`` (``REPRO_SEED_CHUNK`` when ``None``) are
    dispatched over ``workers`` processes; results are folded in canonical
    order with deterministic first-satisfying-seed resolution.  Semantics
    (wrap-around start, trial accounting, best-seed-on-exhaustion) match
    the serial batched scan exactly.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    chunk = resolve_seed_chunk(chunk_size)
    regions, first_seed = scan_regions(family_size, start)

    # Materialise the block boundaries: identical schedule (geometric ramp,
    # trial budget) to the serial engine's iter_seed_blocks.
    blocks = [
        (int(b[0]), int(b[-1]) + 1)
        for b in iter_seed_blocks(regions, max_trials, chunk)
    ]

    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(kernel, payload)
    ) as pool:
        futures = [pool.submit(_eval_block, lo, hi) for lo, hi in blocks]
        evaluated = (
            (np.arange(lo, hi, dtype=np.int64), fut.result())
            for (lo, hi), fut in zip(blocks, futures)
        )
        return fold_scan(evaluated, target, first_seed)
