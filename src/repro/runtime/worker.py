"""Worker-side job execution (runs inside pool processes).

:func:`run_job` is the single entry point the scheduler submits to its
``ProcessPoolExecutor``.  It is deliberately total: *every* failure mode —
bad parameters, generator errors, solver exceptions, per-job timeouts — is
caught and returned as a structured payload, so a failing job never takes
the pool down.  Timeouts use ``SIGALRM`` (POSIX), which interrupts the solve
inside the worker instead of leaving an orphaned computation behind.

The input graph arrives either as pickled-npz bytes (packed once by the
scheduler, so N jobs on the same graph ship one buffer each without
re-generating) or as a :class:`~repro.runtime.spec.GraphSource` to resolve
locally.  Scheduler-packed buffers include the CSR adjacency arrays, so
``graph_from_npz_bytes`` takes the ``Graph.from_csr_arrays`` fast path and
workers never re-run the O(m log m) adjacency build per job.
"""

from __future__ import annotations

import os
import signal
import time
import traceback

import numpy as np

from ..core.api import maximal_independent_set, maximal_matching, uses_lowdeg_path
from ..core.derived import (
    deterministic_coloring,
    deterministic_ruling_set,
    deterministic_vertex_cover,
    is_ruling_set,
    is_vertex_cover,
)
from ..core.records import result_to_payload
from ..graphs.graph import Graph
from ..graphs.io import (
    arc_plane_from_npz_bytes,
    graph_fingerprint,
    graph_from_npz_bytes,
)
from ..verify import verify_matching_pairs, verify_mis_nodes
from .spec import ENGINE_PROBLEMS, JobSpec

__all__ = ["execute_spec", "run_job"]


class JobTimeout(Exception):
    """Raised inside the worker when the per-job wall-clock budget expires."""


def _raise_timeout(signum, frame):  # pragma: no cover - signal plumbing
    raise JobTimeout()


def execute_spec(
    spec: JobSpec, graph: Graph, *, arc_plane=None
) -> dict:
    """Solve one spec on a resolved graph; returns the success payload parts.

    Raises on failure — :func:`run_job` is the layer that converts
    exceptions into structured failure payloads.  ``arc_plane`` optionally
    carries the scheduler-shipped packed arc buffer for engine-model jobs.
    """
    params = spec.make_params()
    out: dict = {
        "graph_n": graph.n,
        "graph_m": graph.m,
        "result_meta": None,
        "arrays": {},
        "path": "",
    }
    if spec.problem == "mis":
        res = maximal_independent_set(
            graph, params=params, force=spec.force, paper_rule=spec.paper_rule
        )
        out["verified"] = bool(verify_mis_nodes(graph, res.independent_set))
        out["solution_size"] = int(res.independent_set.size)
        out["path"] = spec.force or (
            "lowdeg"
            if uses_lowdeg_path(graph, params, paper_rule=spec.paper_rule)
            else "general"
        )
        out["result_meta"], out["arrays"] = result_to_payload(res)
        stats = res
    elif spec.problem == "matching":
        res = maximal_matching(
            graph, params=params, force=spec.force, paper_rule=spec.paper_rule
        )
        out["verified"] = bool(verify_matching_pairs(graph, res.pairs))
        out["solution_size"] = int(res.pairs.shape[0])
        out["path"] = spec.force or (
            "lowdeg"
            if uses_lowdeg_path(
                graph, params, paper_rule=spec.paper_rule, for_matching=True
            )
            else "general"
        )
        out["result_meta"], out["arrays"] = result_to_payload(res)
        stats = res
    elif spec.problem == "vc":
        vc = deterministic_vertex_cover(graph, params=params)
        out["verified"] = bool(is_vertex_cover(graph, vc.cover))
        out["solution_size"] = int(vc.size)
        out["arrays"] = {"solution": np.asarray(vc.cover, dtype=np.int64)}
        stats = vc.matching
    elif spec.problem == "coloring":
        col = deterministic_coloring(graph, params=params)
        proper = True
        if graph.m:
            proper = bool(
                np.all(col.colors[graph.edges_u] != col.colors[graph.edges_v])
            )
        out["verified"] = proper and bool(np.all(col.colors >= 0))
        out["solution_size"] = int(len(set(col.colors.tolist())))
        out["arrays"] = {"solution": np.asarray(col.colors, dtype=np.int64)}
        stats = col.mis
    elif spec.problem == "ruling2":
        rs = deterministic_ruling_set(graph, params=params)
        out["verified"] = bool(is_ruling_set(graph, rs.ruling_set))
        out["solution_size"] = rs.size
        out["arrays"] = {"solution": np.asarray(rs.ruling_set, dtype=np.int64)}
        stats = rs.mis
    elif spec.problem == "cc_mis":
        from ..cclique.mis_cc import cc_mis

        cc = cc_mis(graph, max_scan_trials=params.max_scan_trials)
        out["verified"] = bool(verify_mis_nodes(graph, cc.solution))
        out["solution_size"] = int(cc.solution.size)
        out["arrays"] = {"solution": np.asarray(cc.solution, dtype=np.int64)}
        out["path"] = "congested-clique"
        return _fill_model_stats(out, cc.phases, cc.rounds, cc.snapshot)
    elif spec.problem == "congest_mis":
        from ..congest.mis_congest import congest_mis

        cg = congest_mis(graph, max_scan_trials=params.max_scan_trials)
        out["verified"] = bool(verify_mis_nodes(graph, cg.independent_set))
        out["solution_size"] = int(cg.independent_set.size)
        out["arrays"] = {"solution": np.asarray(cg.independent_set, dtype=np.int64)}
        out["path"] = "congest"
        return _fill_model_stats(out, cg.phases, cg.rounds, cg.snapshot)
    elif spec.problem == "engine_mis":
        from ..mpc.context import MPCContext
        from ..mpc.distributed_luby import distributed_luby_mis

        # Machine count follows the model constants (enough machines to
        # hold the input at S = Theta(n^eps)); the engine's space is then
        # sized for its demonstrated request/response protocol, which keeps
        # per-machine home state (inI / killed / answer planes, ~9 words
        # per resident node), the arc block, and one query per distinct
        # endpoint per holder in flight: ~(12 m + 12 n) / M words plus the
        # broadcast fan-out slack.
        ctx = MPCContext(
            n=graph.n, m=graph.m, eps=params.eps, space_factor=params.space_factor
        )
        machines = ctx.num_machines
        space = max(
            ctx.S,
            -(-(12 * graph.m + 12 * max(graph.n, 1)) // machines)
            + 4 * machines
            + 64,
        )
        stats: dict = {}
        mis, rounds, phases = distributed_luby_mis(
            graph, machines, space, arc_plane=arc_plane, stats_out=stats
        )
        out["verified"] = bool(verify_mis_nodes(graph, mis))
        out["solution_size"] = int(mis.size)
        out["arrays"] = {"solution": np.asarray(mis, dtype=np.int64)}
        out["path"] = "mpc-engine"
        out["space_limit"] = int(space)
        return _fill_model_stats(out, phases, rounds, stats.get("snapshot"))
    else:  # unreachable: JobSpec validates problem
        raise ValueError(f"unknown problem {spec.problem!r}")
    out["iterations"] = int(stats.iterations)
    out["rounds"] = int(stats.rounds)
    out["max_machine_words"] = int(stats.max_machine_words)
    out["space_limit"] = int(stats.space_limit)
    return out


def _fill_model_stats(out: dict, phases: int, rounds: int, snapshot) -> dict:
    out["iterations"] = int(phases)
    out["rounds"] = int(rounds)
    out["max_machine_words"] = int(snapshot.max_words_seen if snapshot else 0)
    ceiling = snapshot.space_ceiling if snapshot else None
    if ceiling is not None:
        out["space_limit"] = int(ceiling)
    if snapshot is not None:
        # Tagged so CacheEntry.load_result knows this is a ModelSnapshot,
        # not a records payload.
        out["result_meta"] = {
            "kind": "model_snapshot",
            "model_snapshot": snapshot.to_dict(),
        }
    return out


def run_job(payload: dict) -> dict:
    """Pool entry point: execute one job described by ``payload``.

    ``payload`` keys: ``spec`` (JobSpec dict), ``graph_npz`` (bytes or
    None), ``timeout`` (seconds or None).  Always returns a dict with a
    ``status`` of ``"ok"``, ``"error"`` or ``"timeout"`` — never raises.
    """
    t0 = time.perf_counter()
    out: dict = {"status": "ok", "worker_pid": os.getpid(), "fingerprint": ""}
    timeout = payload.get("timeout")
    use_alarm = bool(timeout) and hasattr(signal, "SIGALRM")
    old_handler = None
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _raise_timeout)
        signal.setitimer(signal.ITIMER_REAL, float(timeout))
    try:
        spec = JobSpec.from_dict(payload["spec"])
        npz = payload.get("graph_npz")
        graph = graph_from_npz_bytes(npz) if npz is not None else spec.source.resolve()
        arc_plane = None
        if npz is not None and spec.problem in ENGINE_PROBLEMS:
            arc_plane = arc_plane_from_npz_bytes(npz)
        out["fingerprint"] = payload.get("fingerprint") or graph_fingerprint(graph)
        out.update(execute_spec(spec, graph, arc_plane=arc_plane))
    except JobTimeout:
        out["status"] = "timeout"
        out["error_type"] = "JobTimeout"
        out["error_message"] = f"job exceeded {timeout}s wall-clock budget"
        out["error_traceback"] = ""
    except Exception as exc:  # noqa: BLE001 - total by design
        out["status"] = "error"
        out["error_type"] = type(exc).__name__
        out["error_message"] = str(exc)
        out["error_traceback"] = traceback.format_exc()
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
    out["wall_time"] = time.perf_counter() - t0
    return out
