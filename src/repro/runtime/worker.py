"""Worker-side job execution (runs inside pool processes).

:func:`run_job` is the single entry point the scheduler submits to its
``ProcessPoolExecutor``.  It is deliberately total: *every* failure mode —
bad parameters, generator errors, solver exceptions, per-job timeouts — is
caught and returned as a structured payload, so a failing job never takes
the pool down.  Timeouts use ``SIGALRM`` (POSIX), which interrupts the solve
inside the worker instead of leaving an orphaned computation behind.

Dispatch goes through the :data:`repro.api.REGISTRY` facade: the spec's
runtime problem name maps to a ``(problem, model)`` registry key
(:func:`~repro.runtime.spec.runtime_entry`), one :func:`repro.api.solve`
call produces the unified :class:`~repro.api.SolveResult`, and
:func:`payload_from_solve_result` flattens it into the worker payload the
scheduler and cache consume.  There is no per-problem branching here —
registering a new solver makes it batch-runnable with no worker change.

The input graph arrives one of three ways: a ``graph_store`` root plus
fingerprint (the worker mmaps the store's CSR shards read-only — zero-copy,
page-cache bounded; any open failure falls back to regenerating from the
spec with a structured ``store_fallback`` warning in the result meta, never
a job failure), pickled-npz bytes (packed once by the scheduler, so N jobs
on the same graph ship one buffer each without re-generating), or a bare
:class:`~repro.runtime.spec.GraphSource` to resolve locally.
Scheduler-packed buffers include the CSR adjacency arrays, so
``graph_from_npz_bytes`` takes the ``Graph.from_csr_arrays`` fast path and
workers never re-run the O(m log m) adjacency build per job.
"""

from __future__ import annotations

import os
import signal
import time
import traceback

from ..api import SolveRequest, SolveResult, solve
from ..graphs.graph import Graph
from ..graphs.io import (
    arc_plane_from_npz_bytes,
    graph_fingerprint,
    graph_from_npz_bytes,
)
from ..graphs.store import open_stored_graph
from ..obs import trace as _obs
from ..obs.metrics import METRICS
from .spec import ENGINE_PROBLEMS, JobSpec, runtime_entry

__all__ = [
    "execute_spec",
    "load_job_graph",
    "payload_from_solve_result",
    "run_job",
    "warm_worker",
]


def warm_worker() -> int:
    """Pool warm-up target: importing this module is the work.

    Submitted once per worker by :meth:`Scheduler.warm_up` so a
    persistent pool forks (and pays the interpreter + numpy import cost)
    at service startup — from a still thread-light parent — instead of on
    the first request.  Returns the worker pid for log-friendliness.
    """
    return os.getpid()


class JobTimeout(Exception):
    """Raised inside the worker when the per-job wall-clock budget expires."""


def _raise_timeout(signum, frame):  # pragma: no cover - signal plumbing
    raise JobTimeout()


def payload_from_solve_result(result: SolveResult) -> dict:
    """Flatten a :class:`SolveResult` into the worker payload fields.

    The envelope's ``(meta, arrays)`` split rides along as
    ``result_meta`` / ``arrays``, so a cache hit can rebuild the full
    :class:`SolveResult` (see :meth:`repro.runtime.cache.CacheEntry.load_result`).
    """
    meta, arrays = result.to_payload()
    out = {
        "verified": result.verified,
        "solution_size": result.solution_size,
        "path": result.path,
        "iterations": result.iterations,
        "rounds": result.rounds,
        "max_machine_words": result.max_machine_words,
        "space_limit": result.space_limit,
        "result_meta": meta,
        "arrays": arrays,
    }
    if result.trace is not None:
        # The spans themselves ride in result_meta (and hence land in the
        # cache next to the arrays); the JobResult carries the head count.
        out["meta"] = {"trace_spans": len(result.trace)}
    return out


def execute_spec(spec: JobSpec, graph: Graph, *, arc_plane=None) -> dict:
    """Solve one spec on a resolved graph; returns the success payload parts.

    Raises on failure — :func:`run_job` is the layer that converts
    exceptions into structured failure payloads.  ``arc_plane`` optionally
    carries the scheduler-shipped packed arc buffer for engine-model jobs.
    """
    problem, model = runtime_entry(spec.problem)
    request = SolveRequest(
        problem=problem,
        model=model,
        graph=graph,
        eps=spec.eps,
        params=spec.make_params(),
        force=spec.force,
        paper_rule=spec.paper_rule,
        arc_plane=arc_plane,
        tag=spec.tag,
    )
    result = solve(request)
    out: dict = {"graph_n": graph.n, "graph_m": graph.m}
    out.update(payload_from_solve_result(result))
    return out


def load_job_graph(spec: JobSpec, payload: dict) -> tuple[Graph, object, dict | None]:
    """Load a job's input per the payload's shipping mode.

    Returns ``(graph, arc_plane, fallback)`` where ``fallback`` is a
    structured ``store_fallback`` record when a store-backed open failed and
    the graph was regenerated from the spec instead — the degraded path is
    a warning in the result meta, not a job failure.
    """
    store_root = payload.get("graph_store")
    npz = payload.get("graph_npz")
    if store_root is not None:
        try:
            graph = open_stored_graph(store_root, payload["fingerprint"])
            return graph, None, None
        except Exception as exc:  # noqa: BLE001 - corrupt/missing shard
            METRICS.inc("store.fallbacks")
            fallback = {
                "fingerprint": payload.get("fingerprint", ""),
                "store_root": str(store_root),
                "error_type": type(exc).__name__,
                "error_message": str(exc),
            }
            return spec.source.resolve(), None, fallback
    if npz is not None:
        graph = graph_from_npz_bytes(npz)
        arc_plane = (
            arc_plane_from_npz_bytes(npz)
            if spec.problem in ENGINE_PROBLEMS
            else None
        )
        return graph, arc_plane, None
    return spec.source.resolve(), None, None


def run_job(payload: dict) -> dict:
    """Pool entry point: execute one job described by ``payload``.

    ``payload`` keys: ``spec`` (JobSpec dict), one of ``graph_store`` (store
    root; mmap by ``fingerprint``) / ``graph_npz`` (bytes) / neither
    (resolve the source locally), ``timeout`` (seconds or None).  Always
    returns a dict with a ``status`` of ``"ok"``, ``"error"`` or
    ``"timeout"`` — never raises.
    """
    t0 = time.perf_counter()
    out: dict = {"status": "ok", "worker_pid": os.getpid(), "fingerprint": ""}
    timeout = payload.get("timeout")
    use_alarm = bool(timeout) and hasattr(signal, "SIGALRM")
    old_handler = None
    if use_alarm:
        old_handler = signal.signal(signal.SIGALRM, _raise_timeout)
        signal.setitimer(signal.ITIMER_REAL, float(timeout))
    try:
        spec = JobSpec.from_dict(payload["spec"])
        graph, arc_plane, fallback = load_job_graph(spec, payload)
        out["fingerprint"] = payload.get("fingerprint") or graph_fingerprint(graph)
        if payload.get("trace"):
            # Capture regardless of the worker's environment; solve()
            # attaches the span subtree to the result, which
            # payload_from_solve_result ships back through result_meta.
            with _obs.trace_capture():
                out.update(execute_spec(spec, graph, arc_plane=arc_plane))
        else:
            out.update(execute_spec(spec, graph, arc_plane=arc_plane))
        if fallback is not None:
            # Merge, don't clobber: execute_spec may have set trace meta.
            out["meta"] = {**out.get("meta", {}), "store_fallback": fallback}
    except JobTimeout:
        out["status"] = "timeout"
        out["error_type"] = "JobTimeout"
        out["error_message"] = f"job exceeded {timeout}s wall-clock budget"
        out["error_traceback"] = ""
    except Exception as exc:  # noqa: BLE001 - total by design
        out["status"] = "error"
        out["error_type"] = type(exc).__name__
        out["error_message"] = str(exc)
        out["error_traceback"] = traceback.format_exc()
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, old_handler)
    out["wall_time"] = time.perf_counter() - t0
    return out
