"""Job descriptions: hashable, JSON-serializable solve specifications.

A :class:`JobSpec` says *what* to solve — which problem (MIS, matching, or a
``core.derived`` corollary), on which input (a named generator with its
arguments, or an edge-list file), with which :class:`~repro.core.params.Params`
knobs, and optionally pinning the Theorem-1 code path.  Specs are frozen and
hashable so they can key dicts, and they round-trip through JSON so suites
can be persisted and shipped to worker processes.

A :class:`JobResult` is the structured outcome of one job: solve statistics
on success, or a captured ``(type, message, traceback)`` triple on failure.
Results are JSON-round-trippable too; solution arrays live in the result
cache, not in the result record.

Cache addressing is *content* based: the cache key combines the resolved
graph's fingerprint (see :func:`repro.graphs.io.graph_fingerprint`) with a
digest of the solve-relevant spec fields, so two specs that produce the same
graph by different means share a cache entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace

from ..api.envelope import request_digest
from ..api.registry import REGISTRY
from ..graphs import generators as _generators
from ..graphs.graph import Graph
from ..graphs.io import read_edge_list
from ..core.params import Params

__all__ = [
    "ENGINE_PROBLEMS",
    "GraphSource",
    "JobResult",
    "JobSpec",
    "PROBLEMS",
    "register_model_prefix",
    "runtime_entry",
    "runtime_problem_name",
]

#: Short runtime prefix per non-default facade model.  The simulated model
#: keeps bare problem names ("mis", "matching", ...) for continuity with
#: historical specs and cache keys.
_MODEL_PREFIX = {"cclique": "cc", "congest": "congest", "mpc-engine": "engine"}
_PREFIX_MODEL = {v: k for k, v in _MODEL_PREFIX.items()}


def register_model_prefix(model: str, prefix: str) -> None:
    """Give a newly registered facade model a runtime job-name prefix.

    A new *problem* under an existing model needs nothing (names derive
    automatically); a new *model* registers its short prefix once here so
    ``runtime_problem_name`` / ``runtime_entry`` stay bijective.
    """
    if not prefix or "_" in prefix:
        raise ValueError(f"prefix must be non-empty and underscore-free: {prefix!r}")
    existing = _PREFIX_MODEL.get(prefix)
    if existing is not None and existing != model:
        raise ValueError(f"prefix {prefix!r} already maps to model {existing!r}")
    _MODEL_PREFIX[model] = prefix
    _PREFIX_MODEL[prefix] = model


def runtime_problem_name(problem: str, model: str) -> str:
    """The runtime job name of a registry entry (``cc_mis``, ``mis``, ...)."""
    if model == "simulated":
        return problem
    try:
        prefix = _MODEL_PREFIX[model]
    except KeyError:
        raise KeyError(
            f"model {model!r} has no runtime prefix; call "
            f"register_model_prefix({model!r}, <prefix>) once"
        ) from None
    return f"{prefix}_{problem}"


def runtime_entry(name: str) -> tuple[str, str]:
    """Invert :func:`runtime_problem_name`: job name -> (problem, model).

    A name starting with a model prefix is read as that model's entry
    *only when the registry confirms it*; otherwise the whole name is a
    simulated-model problem (so a registered simulated problem that
    happens to start with ``cc_`` / ``congest_`` / ``engine_`` still
    resolves to itself).  A name valid under both readings is rejected —
    rename the simulated problem rather than shadowing a model entry.
    """
    prefix, _, rest = name.partition("_")
    if rest and prefix in _PREFIX_MODEL:
        prefixed = (rest, _PREFIX_MODEL[prefix])
        bare = (name, "simulated")
        if prefixed in REGISTRY and bare in REGISTRY:
            raise ValueError(
                f"ambiguous runtime problem {name!r}: registered both as "
                f"simulated problem {name!r} and as {prefixed}"
            )
        if prefixed in REGISTRY or bare not in REGISTRY:
            return prefixed
    return name, "simulated"


def _registry_problems() -> tuple[str, ...]:
    """Every registry entry as a runtime problem name, simulated first."""
    entries = sorted(
        REGISTRY.entries(), key=lambda e: (e.model != "simulated", e.problem, e.model)
    )
    return tuple(runtime_problem_name(e.problem, e.model) for e in entries)


#: Problems the runtime can dispatch — *generated from the solver
#: registry*, so registering a new ``(problem, model)`` entry makes it
#: batch-runnable with no change here: the Theorem-1 primitives and
#: ``core.derived`` corollaries on the accounting layer, plus the
#: cross-model runs (CONGESTED CLIQUE, CONGEST, the literal MPC engine).
PROBLEMS = _registry_problems()

#: Problems that execute on the literal MPC engine; the scheduler ships
#: these jobs the packed arc plane alongside the CSR buffers.
ENGINE_PROBLEMS = tuple(
    name for name in PROBLEMS if runtime_entry(name)[1] == "mpc-engine"
)

#: Generator names a GraphSource may reference (resolved lazily so specs
#: stay importable without building anything).
GENERATOR_NAMES = tuple(sorted(_generators.__all__))


def _canonical_json(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _digest(obj) -> str:
    return hashlib.sha256(_canonical_json(obj).encode()).hexdigest()


def _as_pairs(mapping) -> tuple[tuple[str, object], ...]:
    """Normalise a kwargs mapping to a sorted, hashable tuple of pairs."""
    if isinstance(mapping, dict):
        items = mapping.items()
    else:
        items = tuple(mapping)
    out = tuple(sorted((str(k), v) for k, v in items))
    for _, v in out:
        if not isinstance(v, (int, float, str, bool)) and v is not None:
            raise TypeError(f"spec argument values must be JSON scalars, got {v!r}")
    return out


@dataclass(frozen=True)
class GraphSource:
    """Where a job's input graph comes from: a generator call or a file."""

    kind: str  # "generator" | "file"
    name: str = ""  # generator function name (kind == "generator")
    args: tuple[tuple[str, object], ...] = ()  # sorted generator kwargs
    path: str = ""  # edge-list path (kind == "file")

    def __post_init__(self) -> None:
        if self.kind not in ("generator", "file"):
            raise ValueError(f"unknown source kind {self.kind!r}")
        if self.kind == "generator" and self.name not in GENERATOR_NAMES:
            raise ValueError(f"unknown generator {self.name!r}")
        if self.kind == "file" and not self.path:
            raise ValueError("file source needs a path")

    @staticmethod
    def generator(name: str, **kwargs) -> "GraphSource":
        return GraphSource(kind="generator", name=name, args=_as_pairs(kwargs))

    @staticmethod
    def from_file(path: str) -> "GraphSource":
        return GraphSource(kind="file", path=str(path))

    def resolve(self) -> Graph:
        """Build / load the graph this source describes."""
        if self.kind == "generator":
            fn = getattr(_generators, self.name)
            return fn(**dict(self.args))
        return read_edge_list(self.path)

    def label(self) -> str:
        if self.kind == "generator":
            inner = ",".join(f"{k}={v}" for k, v in self.args)
            return f"{self.name}({inner})"
        return self.path

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "args": {k: v for k, v in self.args},
            "path": self.path,
        }

    @staticmethod
    def from_dict(d: dict) -> "GraphSource":
        return GraphSource(
            kind=d["kind"],
            name=d.get("name", ""),
            args=_as_pairs(d.get("args", {})),
            path=d.get("path", ""),
        )


@dataclass(frozen=True)
class JobSpec:
    """One solve: problem kind + input + parameters (+ optional forced path).

    Note: parameter *values* are validated when :meth:`make_params` runs in
    the worker, not at spec construction — a spec with bad parameters is a
    legal description of a job that will fail, and the scheduler reports
    that failure structurally.
    """

    problem: str
    source: GraphSource
    eps: float = 0.5
    force: str | None = None  # "general" | "lowdeg" | None (mis/matching only)
    paper_rule: bool = False
    overrides: tuple[tuple[str, object], ...] = ()  # extra Params kwargs
    tag: str = ""  # free-form label for reports

    def __post_init__(self) -> None:
        # PROBLEMS is an import-time snapshot; entries registered later are
        # accepted by consulting the live registry through runtime_entry.
        if self.problem not in PROBLEMS and runtime_entry(self.problem) not in REGISTRY:
            raise ValueError(f"unknown problem {self.problem!r}; pick from {PROBLEMS}")
        object.__setattr__(self, "overrides", _as_pairs(self.overrides))

    # ------------------------------------------------------------------ #
    # Parameters
    # ------------------------------------------------------------------ #

    def make_params(self) -> Params:
        """Materialise Params (raises on invalid values — worker-side)."""
        return Params(eps=self.eps, **dict(self.overrides))

    def with_(self, **kwargs) -> "JobSpec":
        return replace(self, **kwargs)

    # ------------------------------------------------------------------ #
    # Digests
    # ------------------------------------------------------------------ #

    def solve_digest(self) -> str:
        """Digest of the fields that determine the *answer* (not the input).

        Excludes the graph source and tag: the input's identity enters the
        cache key through the resolved graph's content fingerprint instead.
        Delegates to :func:`repro.api.envelope.request_digest` — the shared
        helper the serve-layer coalescer keys on too — and stays
        byte-identical to the historical inline digest, so existing
        on-disk caches keep their addresses.
        """
        return request_digest(self)

    def digest(self) -> str:
        """Digest of the full spec (including source and tag)."""
        return _digest(self.to_dict())

    def cache_key(self, fingerprint: str) -> str:
        """Content address: graph fingerprint x solve digest."""
        return hashlib.sha256(
            f"{fingerprint}:{self.solve_digest()}".encode()
        ).hexdigest()

    # ------------------------------------------------------------------ #
    # JSON round trip
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        return {
            "problem": self.problem,
            "source": self.source.to_dict(),
            "eps": self.eps,
            "force": self.force,
            "paper_rule": self.paper_rule,
            "overrides": {k: v for k, v in self.overrides},
            "tag": self.tag,
        }

    def to_json(self) -> str:
        return _canonical_json(self.to_dict())

    @staticmethod
    def from_dict(d: dict) -> "JobSpec":
        return JobSpec(
            problem=d["problem"],
            source=GraphSource.from_dict(d["source"]),
            eps=float(d.get("eps", 0.5)),
            force=d.get("force"),
            paper_rule=bool(d.get("paper_rule", False)),
            overrides=_as_pairs(d.get("overrides", {})),
            tag=d.get("tag", ""),
        )

    @staticmethod
    def from_json(s: str) -> "JobSpec":
        return JobSpec.from_dict(json.loads(s))


@dataclass(frozen=True)
class JobResult:
    """Structured outcome of one job (success, error, or timeout)."""

    spec: JobSpec
    status: str = "ok"  # "ok" | "error" | "timeout"
    attempts: int = 1
    cache_hit: bool = False
    wall_time: float = 0.0
    worker_pid: int = 0
    fingerprint: str = ""
    graph_n: int = 0
    graph_m: int = 0
    solution_size: int = -1
    iterations: int = 0
    rounds: int = 0
    max_machine_words: int = 0
    space_limit: int = 0
    verified: bool = False
    path: str = ""  # Theorem-1 path taken: "lowdeg" | "general" | ""
    error_type: str = ""
    error_message: str = ""
    error_traceback: str = field(default="", repr=False)
    #: Free-form JSON-safe annotations: cache-hit lookup accounting
    #: (``cache_hit`` / ``lookup_time``), trace span counts, ...
    meta: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        d = {
            f.name: getattr(self, f.name)
            for f in fields(JobResult)
            if f.name != "spec"
        }
        d["spec"] = self.spec.to_dict()
        return d

    def to_json(self) -> str:
        return _canonical_json(self.to_dict())

    @staticmethod
    def from_dict(d: dict) -> "JobResult":
        d = dict(d)
        d["spec"] = JobSpec.from_dict(d["spec"])
        return JobResult(**d)

    @staticmethod
    def from_json(s: str) -> "JobResult":
        return JobResult.from_dict(json.loads(s))
