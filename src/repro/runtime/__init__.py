"""Batch-solver runtime: job specs, process-parallel scheduling, caching.

The substrate for serving many solves efficiently:

* :mod:`~repro.runtime.spec` — hashable, JSON-serializable job descriptions
  and structured results;
* :mod:`~repro.runtime.scheduler` — process-pool fan-out with per-job
  timeout, retry, and structured failure capture;
* :mod:`~repro.runtime.cache` — content-addressed result store (graph
  fingerprint x params digest), persisted as npz + JSONL;
* :mod:`~repro.runtime.suites` — the named workload-suite registry behind
  ``repro batch``;
* :mod:`~repro.runtime.seed_scan` — opt-in chunk-parallel deterministic
  seed scan for the derandomization layer's largest families.
"""

from .cache import CacheEntry, CacheStats, ResultCache
from .scheduler import BatchResult, BatchStats, ResolvedSource, Scheduler
from .seed_scan import parallel_scan
from .spec import (
    PROBLEMS,
    GraphSource,
    JobResult,
    JobSpec,
    runtime_entry,
    runtime_problem_name,
)
from .suites import (
    WorkloadSuite,
    build_suite,
    get_suite,
    list_suites,
    register_suite,
)
from .worker import execute_spec, run_job

__all__ = [
    "BatchResult",
    "BatchStats",
    "CacheEntry",
    "CacheStats",
    "GraphSource",
    "JobResult",
    "JobSpec",
    "PROBLEMS",
    "ResolvedSource",
    "ResultCache",
    "Scheduler",
    "WorkloadSuite",
    "build_suite",
    "execute_spec",
    "get_suite",
    "list_suites",
    "parallel_scan",
    "register_suite",
    "run_job",
    "runtime_entry",
    "runtime_problem_name",
]
