"""Named workload suites: reusable scenario batches for the runtime.

A :class:`WorkloadSuite` is a named, lazily-built list of
:class:`~repro.runtime.spec.JobSpec`s.  Suites are what ``repro batch
--suite <name>`` and the throughput benchmarks consume; registering one is
one :func:`register_suite` call, so downstream experiments can add their
own without touching this module.

Built-ins:

* ``scaling-sweep`` — G(n, p) at geometrically growing ``n`` (the classic
  O(log n) round-bound workload), MIS + matching, two seeds each.
* ``degree-regime`` — near-regular graphs whose degree sweeps across the
  Theorem-1 dispatch boundary (``Delta^2 + 1 <= S``) in ``core/api.py``,
  plus pinned-path pairs on both sides of it.
* ``derived-problems`` — every ``core.derived`` corollary (vertex cover,
  (Delta+1)-coloring, 2-ruling set) over heterogeneous inputs.
* ``throughput-micro`` — twenty small, fixed G(n, p) solves; the standard
  workload for scheduler/cache throughput benchmarking.
* ``large-sweep`` — block-sampled G(n, 8/n) MIS at n = 10^5..10^6; the
  out-of-core workload, intended to run with a graph store configured so
  generation streams to CSR shards and workers mmap them.
* ``cross-model`` — the same inputs solved under every cost model
  registered for MIS (MPC accounting, the literal MPC engine, CONGESTED
  CLIQUE, CONGEST) plus the 2-ruling-set reduction; the workload behind
  the unified cross-model round/communication report.
* ``registry-matrix`` — one job per ``(problem, model)`` entry of the
  :data:`repro.api.REGISTRY` on one shared input; the quickest full sweep
  of the facade surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .spec import GraphSource, JobSpec, runtime_problem_name

__all__ = [
    "WorkloadSuite",
    "build_suite",
    "get_suite",
    "list_suites",
    "register_suite",
]


@dataclass(frozen=True)
class WorkloadSuite:
    """A named batch scenario; ``build()`` materialises the job list."""

    name: str
    description: str
    builder: Callable[[], list[JobSpec]]

    def build(self) -> list[JobSpec]:
        specs = self.builder()
        if not specs:
            raise ValueError(f"suite {self.name!r} built an empty job list")
        return specs


_REGISTRY: dict[str, WorkloadSuite] = {}


def register_suite(suite: WorkloadSuite) -> WorkloadSuite:
    """Add (or replace) a suite in the global registry."""
    _REGISTRY[suite.name] = suite
    return suite


def get_suite(name: str) -> WorkloadSuite:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown suite {name!r}; known suites: {known}") from None


def build_suite(name: str) -> list[JobSpec]:
    return get_suite(name).build()


def list_suites() -> list[WorkloadSuite]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


# ---------------------------------------------------------------------- #
# Built-in suites
# ---------------------------------------------------------------------- #


def _scaling_sweep() -> list[JobSpec]:
    specs = []
    for n in (200, 400, 800, 1600, 3200):
        for seed in (0, 1):
            src = GraphSource.generator("gnp_random_graph", n=n, p=8.0 / n, seed=seed)
            for problem in ("mis", "matching"):
                specs.append(
                    JobSpec(problem, src, tag=f"{problem}-gnp-n{n}-s{seed}")
                )
    return specs


def _degree_regime() -> list[JobSpec]:
    # With eps = 0.5 and n = 512 the dispatch rule Delta^2 + 1 <= S flips
    # around Delta ~ 26, so this degree ladder crosses the boundary.
    n = 512
    specs = []
    for d in (4, 8, 16, 32, 64):
        src = GraphSource.generator("random_regular_graph", n=n, d=d, seed=11)
        for problem in ("mis", "matching"):
            specs.append(JobSpec(problem, src, tag=f"{problem}-reg-d{d}"))
    # Pinned paths on a mid-ladder graph: both algorithms on the same input.
    src = GraphSource.generator("random_regular_graph", n=n, d=8, seed=11)
    for problem in ("mis", "matching"):
        for force in ("lowdeg", "general"):
            specs.append(
                JobSpec(problem, src, force=force, tag=f"{problem}-reg-d8-{force}")
            )
    return specs


def _derived_problems() -> list[JobSpec]:
    inputs = [
        ("gnp", GraphSource.generator("gnp_random_graph", n=300, p=0.02, seed=5)),
        ("plaw", GraphSource.generator("power_law_graph", n=250, attach=2, seed=5)),
        ("tree", GraphSource.generator("random_tree", n=400, seed=5)),
    ]
    specs = [
        JobSpec("vc", src, tag=f"vc-{label}") for label, src in inputs
    ]
    # Coloring builds a product graph with n * (Delta + 1) nodes; keep the
    # inputs degree-bounded so the suite stays interactive.
    color_inputs = [
        ("reg4", GraphSource.generator("random_regular_graph", n=150, d=4, seed=3)),
        ("grid", GraphSource.generator("grid_graph", rows=12, cols=12)),
        ("cycle", GraphSource.generator("cycle_graph", n=200)),
    ]
    specs += [
        JobSpec("coloring", src, tag=f"coloring-{label}")
        for label, src in color_inputs
    ]
    # 2-ruling set squares the graph (degree <= Delta^2), so reuse the
    # degree-bounded coloring inputs.
    specs += [
        JobSpec("ruling2", src, tag=f"ruling2-{label}")
        for label, src in color_inputs
    ]
    return specs


def _cross_model() -> list[JobSpec]:
    # Inputs stay small: the CONGEST bill scales with BFS depth and the
    # engine run moves real messages, so this suite is about breadth of
    # models, not input size.  The model axis is *enumerated from the
    # solver registry*: every model registered for MIS contributes a row,
    # so a newly registered model joins the suite with no change here.
    from ..api import REGISTRY

    inputs = [
        ("gnp", GraphSource.generator("gnp_random_graph", n=220, p=0.03, seed=9)),
        ("reg6", GraphSource.generator("random_regular_graph", n=200, d=6, seed=9)),
        ("grid", GraphSource.generator("grid_graph", rows=14, cols=14)),
    ]
    problems = [
        runtime_problem_name("mis", model) for model in REGISTRY.models("mis")
    ] + ["ruling2"]
    specs = []
    for label, src in inputs:
        for problem in problems:
            specs.append(JobSpec(problem, src, tag=f"{problem}-{label}"))
    return specs


def _registry_matrix() -> list[JobSpec]:
    # One job per registry entry on one small shared input: the quickest
    # end-to-end exercise of the full problem x model surface (and a live
    # demonstration that registering a solver makes it batch-runnable).
    from ..api import REGISTRY

    src = GraphSource.generator("gnp_random_graph", n=120, p=0.05, seed=13)
    return [
        JobSpec(
            runtime_problem_name(e.problem, e.model),
            src,
            tag=f"{e.problem}-{e.model}",
        )
        for e in REGISTRY.entries()
    ]


def _throughput_micro() -> list[JobSpec]:
    specs = []
    for seed in range(10):
        src = GraphSource.generator("gnp_random_graph", n=240, p=8.0 / 240, seed=seed)
        for problem in ("mis", "matching"):
            specs.append(JobSpec(problem, src, tag=f"{problem}-micro-s{seed}"))
    return specs


def _large_sweep() -> list[JobSpec]:
    # The out-of-core regime: inputs sized 10^5..10^6 nodes at constant
    # average degree 8.  These use the streaming-native block-sampled
    # G(n, p) generator, so with a graph store configured
    # (``REPRO_GRAPH_STORE=...`` or ``repro batch --store-dir``) the edge
    # list is never materialised in the scheduler and workers mmap the CSR
    # shards — without a store, the in-memory generator still works but
    # needs RAM proportional to the edge list.  MIS only: the matching
    # reduction builds a line graph (m nodes), which is its own frontier.
    specs = []
    for n in (100_000, 300_000, 1_000_000):
        src = GraphSource.generator("gnp_block_graph", n=n, p=8.0 / n, seed=1)
        specs.append(JobSpec("mis", src, tag=f"mis-gnp-n{n}"))
    return specs


register_suite(
    WorkloadSuite(
        "scaling-sweep",
        "G(n, p) scaling ladder (n = 200..3200, 2 seeds), MIS + matching",
        _scaling_sweep,
    )
)
register_suite(
    WorkloadSuite(
        "degree-regime",
        "near-regular degree ladder across the Theorem-1 dispatch boundary",
        _degree_regime,
    )
)
register_suite(
    WorkloadSuite(
        "derived-problems",
        "vertex cover + (Delta+1)-coloring over heterogeneous inputs",
        _derived_problems,
    )
)
register_suite(
    WorkloadSuite(
        "throughput-micro",
        "20 small fixed G(n, p) solves for scheduler/cache benchmarking",
        _throughput_micro,
    )
)
register_suite(
    WorkloadSuite(
        "large-sweep",
        "store-backed G(n, 8/n) MIS at n = 1e5..1e6 (use with a graph store)",
        _large_sweep,
    )
)
register_suite(
    WorkloadSuite(
        "cross-model",
        "same inputs under MPC / engine / CLIQUE / CONGEST + 2-ruling set",
        _cross_model,
    )
)
register_suite(
    WorkloadSuite(
        "registry-matrix",
        "one job per (problem, model) solver-registry entry on one input",
        _registry_matrix,
    )
)
