"""Content-addressed result cache (npz + JSONL on disk).

Layout under ``cache_dir``::

    index.jsonl           append-only op log: {"op": "put"|"touch"|"evict", ...}
    objects/<key>.json    job summary + (for MIS/matching) the full records
                          payload from ``result_to_payload``
    objects/<key>.npz     solution arrays

The key is ``sha256(graph_fingerprint : solve_digest)`` (see
:meth:`~repro.runtime.spec.JobSpec.cache_key`, built on
:func:`repro.api.envelope.request_digest`), so identical inputs solved
with identical parameters hit the same entry no matter how the graph was
produced or which process stored it.  The JSONL log is replayed on open to
rebuild LRU order; it is compacted when it grows far past the live entry
count.

Concurrency: the serve layer makes concurrent access the norm, so the
cache is safe under it by construction rather than by convention.  All
object writes are atomic renames (``.json.tmp`` / ``.npz.tmp`` →
``os.replace``), so a reader never observes a half-written object; reads
are *tolerant* — a torn or foreign meta file counts as a miss instead of
raising — and the in-process state is guarded by an ``RLock`` so one
``ResultCache`` instance can be shared across threads (the service's
batcher thread and its event loop).  Cross-process, any number of readers
are safe alongside writers; multiple writers degrade gracefully
(last-put-wins on identical content-addressed keys, torn index lines are
skipped on replay), though routing writes through one scheduler per
directory — what the serve layer's micro-batcher does — keeps the LRU log
tight.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.records import result_from_payload

__all__ = ["CacheEntry", "CacheStats", "ResultCache"]


@dataclass
class CacheStats:
    """Per-process counters plus on-disk totals."""

    entries: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0
    disk_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "entries": self.entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "disk_bytes": self.disk_bytes,
            "hit_rate": self.hit_rate,
        }


@dataclass
class CacheEntry:
    """A resolved cache hit; arrays load lazily from the npz object."""

    key: str
    job: dict  # stored JobResult dict (summary of the original solve)
    result_meta: dict | None  # payload meta: records (MIS/matching) or snapshot
    npz_path: Path

    def arrays(self) -> dict[str, np.ndarray]:
        with np.load(self.npz_path) as z:
            return {name: z[name].copy() for name in z.files}

    def trace(self) -> list | None:
        """The solve's recorded span list, if the job ran traced."""
        if self.result_meta is None:
            return None
        return self.result_meta.get("trace")

    def load_result(self):
        """Rebuild the stored result object (if one was stored).

        Facade-era entries store the unified
        :class:`~repro.api.SolveResult` envelope (kind ``"solve_result"``)
        and rebuild it — solution array, model snapshot, and (for simulated
        MIS/matching) the full trace record.  Pre-facade entries still load:
        MIS / matching jobs rebuild their result record; cross-model jobs
        stored the run's :class:`~repro.models.ledger.ModelSnapshot`.
        """
        if self.result_meta is None:
            return None
        kind = self.result_meta.get("kind")
        if kind == "solve_result":
            from ..api import SolveResult

            return SolveResult.from_payload(self.result_meta, self.arrays())
        if kind == "model_snapshot":
            from ..models.ledger import ModelSnapshot

            return ModelSnapshot.from_dict(self.result_meta["model_snapshot"])
        return result_from_payload(self.result_meta, self.arrays())


class ResultCache:
    """LRU-evicting, content-addressed store of finished solves."""

    def __init__(self, cache_dir: str | Path, *, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.dir = Path(cache_dir)
        self.objects_dir = self.dir / "objects"
        self.index_path = self.dir / "index.jsonl"
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._lru: OrderedDict[str, float] = OrderedDict()  # key -> stored-at
        self._ops_replayed = 0
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self._replay()
        with self._lock:
            self._maybe_compact()

    # ------------------------------------------------------------------ #
    # Index log
    # ------------------------------------------------------------------ #

    def _replay(self) -> None:
        if not self.index_path.exists():
            return
        with self.index_path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    op = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail write; ignore
                self._ops_replayed += 1
                key = op.get("key", "")
                kind = op.get("op")
                if kind == "put":
                    self._lru[key] = float(op.get("at", 0.0))
                    self._lru.move_to_end(key)
                elif kind == "touch" and key in self._lru:
                    self._lru.move_to_end(key)
                elif kind == "evict":
                    self._lru.pop(key, None)
        # Drop index entries whose object files vanished out-of-band.
        for key in [k for k in self._lru if not self._meta_path(k).exists()]:
            del self._lru[key]
        self.stats.entries = len(self._lru)

    def _append(self, op: dict) -> None:
        with self.index_path.open("a") as fh:
            fh.write(json.dumps(op, sort_keys=True) + "\n")
        self._ops_replayed += 1

    def _maybe_compact(self) -> None:
        if self._ops_replayed <= 4 * max(len(self._lru), 1) + 64:
            return
        tmp = self.index_path.with_suffix(".jsonl.tmp")
        with tmp.open("w") as fh:
            for key, at in self._lru.items():
                fh.write(json.dumps({"op": "put", "key": key, "at": at}) + "\n")
        tmp.replace(self.index_path)
        self._ops_replayed = len(self._lru)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #

    def _meta_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.json"

    def _npz_path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.npz"

    # ------------------------------------------------------------------ #
    # Core API
    # ------------------------------------------------------------------ #

    def __contains__(self, key: str) -> bool:
        return key in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    def get(self, key: str) -> CacheEntry | None:
        """Look up a key; counts a hit/miss and refreshes LRU position.

        Tolerant by contract: a vanished, torn, or foreign object file is a
        *miss* (and the key is dropped from the in-process LRU), never an
        exception — concurrent writers and crash debris must not take a
        serving process down.
        """
        with self._lock:
            meta_path = self._meta_path(key)
            if key not in self._lru or not meta_path.exists():
                self.stats.misses += 1
                return None
            try:
                with meta_path.open() as fh:
                    stored = json.load(fh)
                job = stored["job"]
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                # Torn entry (crash mid-write predating atomic renames,
                # out-of-band tampering): treat as a miss and forget it.
                self._lru.pop(key, None)
                self.stats.entries = len(self._lru)
                self.stats.misses += 1
                return None
            self._lru.move_to_end(key)
            self._append({"op": "touch", "key": key})
            self._maybe_compact()  # all-warm workloads never put(); bound the log
            self.stats.hits += 1
            return CacheEntry(
                key=key,
                job=job,
                result_meta=stored.get("result_meta"),
                npz_path=self._npz_path(key),
            )

    def put(
        self,
        key: str,
        job: dict,
        arrays: dict[str, np.ndarray],
        result_meta: dict | None = None,
    ) -> None:
        """Store a finished solve under ``key`` (idempotent overwrite).

        Both object files land via atomic rename — npz first, meta second —
        so a concurrent reader either sees the complete entry or (from the
        meta's absence) a clean miss, never a torn one.
        """
        with self._lock:
            stored = {"key": key, "job": job, "result_meta": result_meta}
            npz_path = self._npz_path(key)
            npz_tmp = npz_path.with_suffix(".npz.tmp")
            with npz_tmp.open("wb") as fh:
                np.savez_compressed(fh, **arrays)
            npz_tmp.replace(npz_path)
            tmp = self._meta_path(key).with_suffix(".json.tmp")
            tmp.write_text(json.dumps(stored, sort_keys=True))
            tmp.replace(self._meta_path(key))
            at = time.time()
            self._lru[key] = at
            self._lru.move_to_end(key)
            self._append({"op": "put", "key": key, "at": at})
            self.stats.stores += 1
            self.stats.entries = len(self._lru)
            while len(self._lru) > self.max_entries:
                self._evict_one()
            self._maybe_compact()

    def _evict_one(self) -> None:
        victim, _ = self._lru.popitem(last=False)  # least recently used
        self._meta_path(victim).unlink(missing_ok=True)
        self._npz_path(victim).unlink(missing_ok=True)
        self._append({"op": "evict", "key": victim})
        self.stats.evictions += 1
        self.stats.entries = len(self._lru)

    def clear(self) -> int:
        """Remove every entry; returns how many were dropped."""
        with self._lock:
            dropped = len(self._lru)
            for key in list(self._lru):
                self._meta_path(key).unlink(missing_ok=True)
                self._npz_path(key).unlink(missing_ok=True)
            self._lru.clear()
            self.index_path.unlink(missing_ok=True)
            self._ops_replayed = 0
            self.stats.entries = 0
            return dropped

    def disk_usage(self) -> int:
        """Total bytes of stored objects + index."""
        total = 0
        if self.index_path.exists():
            total += self.index_path.stat().st_size
        for p in self.objects_dir.iterdir():
            try:
                total += p.stat().st_size
            except OSError:
                continue  # concurrently evicted by another process
        self.stats.disk_bytes = total
        return total

    def keys(self) -> list[str]:
        """Keys in LRU order (oldest first)."""
        with self._lock:
            return list(self._lru)

    def __repr__(self) -> str:
        return (
            f"ResultCache({os.fspath(self.dir)!r}, entries={len(self._lru)}, "
            f"max_entries={self.max_entries})"
        )
