"""Process-parallel batch scheduler for :class:`~repro.runtime.spec.JobSpec`s.

The scheduler owns the whole batch lifecycle:

1. **Resolve** each distinct graph source once in the parent.  Without a
   graph store this means generate/read, fingerprint, and pack to npz bytes
   — N jobs on the same input ship one buffer, never re-generate per
   worker.  With a :class:`~repro.graphs.store.GraphStore` configured
   (``store=`` or ``REPRO_GRAPH_STORE``), resolution instead *ensures the
   graph exists on disk* — streaming-capable generators build mmap-ready
   CSR shards without materialising the edge list in this process — and
   jobs ship a store key; workers mmap the shards directly, so per-job
   dispatch cost drops from O(m) pickled bytes to O(1).
2. **Serve from cache**: jobs whose ``cache_key`` (graph fingerprint x solve
   digest) is already stored come back instantly as ``cache_hit`` results.
3. **Fan out** the misses over a ``ProcessPoolExecutor``; each worker call
   is total (see :mod:`repro.runtime.worker`), so a failing or timing-out
   job yields a structured failure ``JobResult`` instead of a pool crash.
   Failed jobs are retried up to ``retries`` extra attempts.
4. **Store** fresh successes back into the cache.

Results always come back aligned with the input spec order.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

from ..api.config import ExecutionConfig
from ..graphs.io import graph_fingerprint, graph_to_npz_bytes
from ..graphs.store import GraphStore, StoredGraphInfo
from ..graphs.streaming import STREAMING_GENERATORS
from ..obs import trace as _obs
from ..obs.metrics import METRICS
from .cache import ResultCache
from .spec import ENGINE_PROBLEMS, GraphSource, JobResult, JobSpec
from .worker import run_job, warm_worker

__all__ = ["BatchResult", "BatchStats", "ResolvedSource", "Scheduler"]


@dataclass(frozen=True)
class ResolvedSource:
    """One distinct input, resolved: identity + how workers will load it.

    Exactly one of ``npz`` (pickled buffer rides in each payload) or
    ``store_root`` (workers mmap shards from the store) is set.
    """

    fingerprint: str
    n: int
    m: int
    npz: bytes | None = None
    store_root: str | None = None
    store_hit: bool = False

    @property
    def payload_bytes(self) -> int:
        """Graph bytes shipped per job payload under this resolution."""
        if self.npz is not None:
            return len(self.npz)
        return len(self.store_root or "") + len(self.fingerprint)

#: JobResult fields the worker payload / cache entry carries verbatim.
_PAYLOAD_FIELDS = (
    "wall_time",
    "worker_pid",
    "fingerprint",
    "graph_n",
    "graph_m",
    "solution_size",
    "iterations",
    "rounds",
    "max_machine_words",
    "space_limit",
    "verified",
    "path",
    "error_type",
    "error_message",
    "error_traceback",
    "meta",
)


@dataclass
class BatchStats:
    """Aggregate accounting for one :meth:`Scheduler.run` call."""

    total: int = 0
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries_used: int = 0
    wall_time: float = 0.0
    workers: int = 1
    #: Graph payload bytes handed to the pool across all submissions
    #: (npz buffers, or store key strings when a graph store is active).
    bytes_shipped: int = 0
    #: Distinct sources served from / built into the graph store.
    store_hits: int = 0
    store_misses: int = 0
    #: Jobs whose worker fell back to regenerating after a shard failure.
    store_fallbacks: int = 0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    @property
    def jobs_per_second(self) -> float:
        return self.total / self.wall_time if self.wall_time > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "ok": self.ok,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "retries_used": self.retries_used,
            "wall_time": self.wall_time,
            "jobs_per_second": self.jobs_per_second,
            "workers": self.workers,
            "bytes_shipped": self.bytes_shipped,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "store_fallbacks": self.store_fallbacks,
        }

    def to_payload(self) -> dict:
        """JSON-safe view (alias of :meth:`to_dict` for payload call sites)."""
        return self.to_dict()


@dataclass
class BatchResult:
    """Ordered results plus batch-level stats."""

    results: list[JobResult] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.results)

    def failures(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]


def _result_from_payload_dict(
    spec: JobSpec, out: dict, *, attempts: int, cache_hit: bool = False
) -> JobResult:
    kwargs = {k: out[k] for k in _PAYLOAD_FIELDS if k in out}
    return JobResult(
        spec=spec,
        status=out.get("status", "ok"),
        attempts=attempts,
        cache_hit=cache_hit,
        **kwargs,
    )


class Scheduler:
    """Fan a batch of job specs out over worker processes, cache-first.

    Parameters
    ----------
    workers:
        Pool size (``>= 1``).  With ``workers == 1`` the pool still runs —
        useful as a like-for-like throughput baseline.
    timeout:
        Per-job wall-clock budget in seconds (enforced worker-side via
        ``SIGALRM``; ``None`` disables).
    retries:
        Extra attempts per failing job (0 = fail fast).
    cache:
        Optional :class:`ResultCache`; hits skip the pool entirely and
        fresh successes are stored back.
    trace:
        ``True`` asks each worker to capture a per-job trace (the trace
        rides inside the result payload, so it lands next to the cached
        arrays); ``None`` follows the parent's ``REPRO_TRACE`` setting.
    store:
        Optional out-of-core graph store: a :class:`GraphStore`, a
        directory path, or ``None`` to follow ``REPRO_GRAPH_STORE``
        (unset = npz shipping, the historical path).  When active, distinct
        sources resolve to on-disk CSR shards once and every job ships a
        store key instead of a pickled buffer.
    persistent:
        ``True`` keeps one ``ProcessPoolExecutor`` alive across ``run``
        calls instead of forking a fresh pool per batch — the always-on
        service mode, where ``run`` is called once per micro-batch and
        per-call pool startup would dominate small batches.  Call
        :meth:`close` (or use the scheduler as a context manager) to shut
        the pool down; a pool broken by a hard worker crash is discarded
        and replaced on the next batch.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        timeout: float | None = None,
        retries: int = 0,
        cache: ResultCache | None = None,
        trace: bool | None = None,
        store: GraphStore | str | Path | None = None,
        persistent: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.cache = cache
        self.trace = _obs.is_tracing() if trace is None else bool(trace)
        if store is None:
            store = ExecutionConfig.from_env().graph_store
        if store is not None and not isinstance(store, GraphStore):
            store = GraphStore(store)
        self.store = store
        self.persistent = persistent
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #

    def _acquire_pool(self) -> tuple[ProcessPoolExecutor, bool]:
        """``(pool, owned)`` — owned pools are shut down after the batch."""
        if not self.persistent:
            return ProcessPoolExecutor(max_workers=self.workers), True
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool, False

    def _discard_broken_pool(self, pool: ProcessPoolExecutor) -> None:
        if self.persistent and self._pool is pool:
            self._pool = None
        pool.shutdown(wait=False, cancel_futures=True)

    def warm_up(self) -> None:
        """Pre-fork a persistent pool's workers (no-op otherwise).

        The serve layer calls this at startup: forking happens while the
        parent is still thread-light (before the event loop spawns
        executor threads) and worker import cost is paid before the first
        request instead of inside it.
        """
        if not self.persistent:
            return
        pool, _ = self._acquire_pool()
        for fut in [pool.submit(warm_worker) for _ in range(self.workers)]:
            fut.result()

    def close(self) -> None:
        """Shut down a persistent pool (no-op otherwise / when already closed)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Input resolution
    # ------------------------------------------------------------------ #

    def _resolve_sources(
        self, specs: list[JobSpec]
    ) -> dict[GraphSource, ResolvedSource | Exception]:
        """Resolve each distinct source once into a :class:`ResolvedSource`.

        Without a store, the npz payload carries the CSR adjacency buffers,
        so every worker reconstructs the graph through the validated
        :meth:`~repro.graphs.graph.Graph.from_csr_arrays` fast path instead
        of re-sorting the edge list once per job; sources feeding
        engine-model jobs additionally ship the packed arc plane, packed
        once here rather than once per worker.

        With a store, generator sources with streaming variants build CSR
        shards straight to disk (never materialising the edge list in this
        process); other sources materialise once and are put into the
        store.  Either way the jobs then ship only the store key.
        """
        wants_arcs = {
            spec.source for spec in specs if spec.problem in ENGINE_PROBLEMS
        }
        resolved: dict[GraphSource, ResolvedSource | Exception] = {}
        for spec in specs:
            if spec.source in resolved:
                continue
            try:
                resolved[spec.source] = self._resolve_one(
                    spec.source, spec.source in wants_arcs
                )
            except Exception as exc:  # structured parent-side failure
                resolved[spec.source] = exc
        return resolved

    def _resolve_one(
        self, source: GraphSource, wants_arc: bool
    ) -> ResolvedSource:
        if self.store is not None:
            root = os.fspath(self.store.root)
            if source.kind == "generator" and source.name in STREAMING_GENERATORS:
                info = self.store.ensure_generator(
                    source.name, dict(source.args), label=source.label()
                )
            else:
                g = source.resolve()
                hit = graph_fingerprint(g) in self.store
                put = self.store.put_graph(g, source=source.label())
                info = StoredGraphInfo(
                    fingerprint=put.fingerprint,
                    n=put.n,
                    m=put.m,
                    nbytes=put.nbytes,
                    hit=hit,
                )
            return ResolvedSource(
                fingerprint=info.fingerprint,
                n=info.n,
                m=info.m,
                store_root=root,
                store_hit=info.hit,
            )
        g = source.resolve()
        return ResolvedSource(
            fingerprint=graph_fingerprint(g),
            n=g.n,
            m=g.m,
            npz=graph_to_npz_bytes(
                g, include_csr=True, include_arc_plane=wants_arc
            ),
        )

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #

    def run(self, specs: list[JobSpec]) -> BatchResult:
        """Execute a batch; returns results aligned with ``specs`` order."""
        t0 = time.perf_counter()
        stats = BatchStats(total=len(specs), workers=self.workers)
        results: list[JobResult | None] = [None] * len(specs)
        resolved = self._resolve_sources(specs)
        for res in resolved.values():
            if isinstance(res, ResolvedSource) and res.store_root is not None:
                if res.store_hit:
                    stats.store_hits += 1
                else:
                    stats.store_misses += 1

        pending: list[int] = []
        keys: dict[int, str] = {}
        for idx, spec in enumerate(specs):
            res = resolved[spec.source]
            if isinstance(res, Exception):
                results[idx] = JobResult(
                    spec=spec,
                    status="error",
                    error_type=type(res).__name__,
                    error_message=f"input resolution failed: {res}",
                )
                continue
            keys[idx] = spec.cache_key(res.fingerprint)
            t_lookup = time.perf_counter()
            hit = self.cache.get(keys[idx]) if self.cache is not None else None
            lookup_time = time.perf_counter() - t_lookup
            if hit is not None:
                # The stored wall_time is the original solve's; the lookup
                # cost is accounted separately in meta, not smeared over it.
                job = dict(hit.job)
                job["status"] = "ok"
                job["meta"] = {
                    **(job.get("meta") or {}),
                    "cache_hit": True,
                    "lookup_time": lookup_time,
                }
                results[idx] = _result_from_payload_dict(
                    spec, job, attempts=0, cache_hit=True
                )
                stats.cache_hits += 1
                METRICS.inc("runtime.cache.hits")
            else:
                if self.cache is not None:
                    stats.cache_misses += 1
                    METRICS.inc("runtime.cache.misses")
                pending.append(idx)

        if pending:
            self._run_pool(specs, resolved, keys, pending, results, stats)

        final = [r for r in results if r is not None]
        assert len(final) == len(specs), "scheduler dropped a job"
        for r in final:
            if r.status == "ok":
                stats.ok += 1
            elif r.status == "timeout":
                stats.timeouts += 1
            else:
                stats.errors += 1
        stats.wall_time = time.perf_counter() - t0
        return BatchResult(results=final, stats=stats)

    def _run_pool(
        self,
        specs: list[JobSpec],
        resolved: dict,
        keys: dict[int, str],
        pending: list[int],
        results: list[JobResult | None],
        stats: BatchStats,
    ) -> None:
        attempts = {idx: 0 for idx in pending}

        def make_payload(idx: int) -> dict:
            spec = specs[idx]
            desc: ResolvedSource = resolved[spec.source]
            payload = {
                "spec": spec.to_dict(),
                "fingerprint": desc.fingerprint,
                "timeout": self.timeout,
                "trace": self.trace,
            }
            if desc.store_root is not None:
                payload["graph_store"] = desc.store_root
            else:
                payload["graph_npz"] = desc.npz
            shipped = desc.payload_bytes
            stats.bytes_shipped += shipped
            METRICS.inc("runtime.bytes_shipped", shipped)
            return payload

        pool, owned = self._acquire_pool()
        broken = False
        try:
            queue = list(pending)
            while queue:
                futures = {}
                submit_failed: list[tuple[int, Exception]] = []
                for idx in queue:
                    try:
                        futures[pool.submit(run_job, make_payload(idx))] = idx
                    except Exception as exc:  # pool already broken
                        broken = broken or isinstance(exc, BrokenExecutor)
                        submit_failed.append((idx, exc))
                queue = []
                for idx, exc in submit_failed:
                    results[idx] = JobResult(
                        spec=specs[idx],
                        status="error",
                        attempts=attempts[idx] + 1,
                        error_type=type(exc).__name__,
                        error_message=f"pool submission failed: {exc}",
                    )
                for fut in as_completed(futures):
                    idx = futures[fut]
                    attempts[idx] += 1
                    spec = specs[idx]
                    try:
                        out = fut.result()
                    except Exception as exc:
                        # Worker died without returning (e.g. hard crash,
                        # unpicklable payload): structured failure, pool-level.
                        broken = broken or isinstance(exc, BrokenExecutor)
                        out = {
                            "status": "error",
                            "error_type": type(exc).__name__,
                            "error_message": f"pool-level failure: {exc}",
                            "error_traceback": "",
                        }
                    if out.get("status") == "timeout":
                        METRICS.inc("runtime.worker.timeouts")
                    if out.get("status") != "ok" and attempts[idx] <= self.retries:
                        stats.retries_used += 1
                        METRICS.inc("runtime.worker.retries")
                        queue.append(idx)
                        continue
                    # Failure payloads may predate graph loading in the
                    # worker; the parent resolved the input, so report it.
                    desc = resolved[spec.source]
                    out.setdefault("graph_n", desc.n)
                    out.setdefault("graph_m", desc.m)
                    if not out.get("fingerprint"):
                        out["fingerprint"] = desc.fingerprint
                    meta = out.get("meta")
                    if isinstance(meta, dict) and "store_fallback" in meta:
                        stats.store_fallbacks += 1
                        METRICS.inc("store.fallbacks")
                    results[idx] = _result_from_payload_dict(
                        spec, out, attempts=attempts[idx]
                    )
                    if out.get("status") == "ok" and self.cache is not None:
                        self._store(keys[idx], results[idx], out)
        finally:
            if owned:
                pool.shutdown(wait=True)
            elif broken:
                # A hard worker crash poisons the whole executor; drop it so
                # the next batch on this persistent scheduler forks fresh.
                self._discard_broken_pool(pool)

    def _store(self, key: str, result: JobResult, out: dict) -> None:
        job = result.to_dict()
        job.pop("spec", None)  # cache is content-addressed, not spec-addressed
        job.pop("attempts", None)
        job.pop("cache_hit", None)
        self.cache.put(
            key,
            job=job,
            arrays=out.get("arrays", {}),
            result_meta=out.get("result_meta"),
        )
