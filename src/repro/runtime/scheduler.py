"""Process-parallel batch scheduler for :class:`~repro.runtime.spec.JobSpec`s.

The scheduler owns the whole batch lifecycle:

1. **Resolve** each distinct graph source once in the parent (generator call
   or file read), fingerprint it, and pack it to npz bytes — N jobs on the
   same input ship one buffer, never re-generate per worker.
2. **Serve from cache**: jobs whose ``cache_key`` (graph fingerprint x solve
   digest) is already stored come back instantly as ``cache_hit`` results.
3. **Fan out** the misses over a ``ProcessPoolExecutor``; each worker call
   is total (see :mod:`repro.runtime.worker`), so a failing or timing-out
   job yields a structured failure ``JobResult`` instead of a pool crash.
   Failed jobs are retried up to ``retries`` extra attempts.
4. **Store** fresh successes back into the cache.

Results always come back aligned with the input spec order.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from ..graphs.graph import Graph
from ..graphs.io import graph_fingerprint, graph_to_npz_bytes
from ..obs import trace as _obs
from ..obs.metrics import METRICS
from .cache import ResultCache
from .spec import ENGINE_PROBLEMS, GraphSource, JobResult, JobSpec
from .worker import run_job

__all__ = ["BatchResult", "BatchStats", "Scheduler"]

#: JobResult fields the worker payload / cache entry carries verbatim.
_PAYLOAD_FIELDS = (
    "wall_time",
    "worker_pid",
    "fingerprint",
    "graph_n",
    "graph_m",
    "solution_size",
    "iterations",
    "rounds",
    "max_machine_words",
    "space_limit",
    "verified",
    "path",
    "error_type",
    "error_message",
    "error_traceback",
    "meta",
)


@dataclass
class BatchStats:
    """Aggregate accounting for one :meth:`Scheduler.run` call."""

    total: int = 0
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries_used: int = 0
    wall_time: float = 0.0
    workers: int = 1

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    @property
    def jobs_per_second(self) -> float:
        return self.total / self.wall_time if self.wall_time > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "ok": self.ok,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "retries_used": self.retries_used,
            "wall_time": self.wall_time,
            "jobs_per_second": self.jobs_per_second,
            "workers": self.workers,
        }

    def to_payload(self) -> dict:
        """JSON-safe view (alias of :meth:`to_dict` for payload call sites)."""
        return self.to_dict()


@dataclass
class BatchResult:
    """Ordered results plus batch-level stats."""

    results: list[JobResult] = field(default_factory=list)
    stats: BatchStats = field(default_factory=BatchStats)

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.results)

    def failures(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]


def _result_from_payload_dict(
    spec: JobSpec, out: dict, *, attempts: int, cache_hit: bool = False
) -> JobResult:
    kwargs = {k: out[k] for k in _PAYLOAD_FIELDS if k in out}
    return JobResult(
        spec=spec,
        status=out.get("status", "ok"),
        attempts=attempts,
        cache_hit=cache_hit,
        **kwargs,
    )


class Scheduler:
    """Fan a batch of job specs out over worker processes, cache-first.

    Parameters
    ----------
    workers:
        Pool size (``>= 1``).  With ``workers == 1`` the pool still runs —
        useful as a like-for-like throughput baseline.
    timeout:
        Per-job wall-clock budget in seconds (enforced worker-side via
        ``SIGALRM``; ``None`` disables).
    retries:
        Extra attempts per failing job (0 = fail fast).
    cache:
        Optional :class:`ResultCache`; hits skip the pool entirely and
        fresh successes are stored back.
    trace:
        ``True`` asks each worker to capture a per-job trace (the trace
        rides inside the result payload, so it lands next to the cached
        arrays); ``None`` follows the parent's ``REPRO_TRACE`` setting.
    """

    def __init__(
        self,
        *,
        workers: int = 1,
        timeout: float | None = None,
        retries: int = 0,
        cache: ResultCache | None = None,
        trace: bool | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.cache = cache
        self.trace = _obs.is_tracing() if trace is None else bool(trace)

    # ------------------------------------------------------------------ #
    # Input resolution
    # ------------------------------------------------------------------ #

    def _resolve_sources(
        self, specs: list[JobSpec]
    ) -> dict[GraphSource, tuple[Graph, str, bytes] | Exception]:
        """Build each distinct source once: graph, fingerprint, npz bytes.

        The npz payload carries the CSR adjacency buffers, so every worker
        reconstructs the graph through the validated
        :meth:`~repro.graphs.graph.Graph.from_csr_arrays` fast path instead
        of re-sorting the edge list once per job.  Sources feeding
        engine-model jobs additionally ship the packed arc plane the
        columnar round core loads from, packed once here rather than once
        per worker.
        """
        wants_arcs = {
            spec.source for spec in specs if spec.problem in ENGINE_PROBLEMS
        }
        resolved: dict[GraphSource, tuple[Graph, str, bytes] | Exception] = {}
        for spec in specs:
            if spec.source in resolved:
                continue
            try:
                g = spec.source.resolve()
                resolved[spec.source] = (
                    g,
                    graph_fingerprint(g),
                    graph_to_npz_bytes(
                        g,
                        include_csr=True,
                        include_arc_plane=spec.source in wants_arcs,
                    ),
                )
            except Exception as exc:  # structured parent-side failure
                resolved[spec.source] = exc
        return resolved

    # ------------------------------------------------------------------ #
    # Batch execution
    # ------------------------------------------------------------------ #

    def run(self, specs: list[JobSpec]) -> BatchResult:
        """Execute a batch; returns results aligned with ``specs`` order."""
        t0 = time.perf_counter()
        stats = BatchStats(total=len(specs), workers=self.workers)
        results: list[JobResult | None] = [None] * len(specs)
        resolved = self._resolve_sources(specs)

        pending: list[int] = []
        keys: dict[int, str] = {}
        for idx, spec in enumerate(specs):
            res = resolved[spec.source]
            if isinstance(res, Exception):
                results[idx] = JobResult(
                    spec=spec,
                    status="error",
                    error_type=type(res).__name__,
                    error_message=f"input resolution failed: {res}",
                )
                continue
            _, fingerprint, _ = res
            keys[idx] = spec.cache_key(fingerprint)
            t_lookup = time.perf_counter()
            hit = self.cache.get(keys[idx]) if self.cache is not None else None
            lookup_time = time.perf_counter() - t_lookup
            if hit is not None:
                # The stored wall_time is the original solve's; the lookup
                # cost is accounted separately in meta, not smeared over it.
                job = dict(hit.job)
                job["status"] = "ok"
                job["meta"] = {
                    **(job.get("meta") or {}),
                    "cache_hit": True,
                    "lookup_time": lookup_time,
                }
                results[idx] = _result_from_payload_dict(
                    spec, job, attempts=0, cache_hit=True
                )
                stats.cache_hits += 1
                METRICS.inc("runtime.cache.hits")
            else:
                if self.cache is not None:
                    stats.cache_misses += 1
                    METRICS.inc("runtime.cache.misses")
                pending.append(idx)

        if pending:
            self._run_pool(specs, resolved, keys, pending, results, stats)

        final = [r for r in results if r is not None]
        assert len(final) == len(specs), "scheduler dropped a job"
        for r in final:
            if r.status == "ok":
                stats.ok += 1
            elif r.status == "timeout":
                stats.timeouts += 1
            else:
                stats.errors += 1
        stats.wall_time = time.perf_counter() - t0
        return BatchResult(results=final, stats=stats)

    def _run_pool(
        self,
        specs: list[JobSpec],
        resolved: dict,
        keys: dict[int, str],
        pending: list[int],
        results: list[JobResult | None],
        stats: BatchStats,
    ) -> None:
        attempts = {idx: 0 for idx in pending}

        def make_payload(idx: int) -> dict:
            spec = specs[idx]
            _, fingerprint, npz = resolved[spec.source]
            return {
                "spec": spec.to_dict(),
                "graph_npz": npz,
                "fingerprint": fingerprint,
                "timeout": self.timeout,
                "trace": self.trace,
            }

        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            queue = list(pending)
            while queue:
                futures = {}
                submit_failed: list[tuple[int, Exception]] = []
                for idx in queue:
                    try:
                        futures[pool.submit(run_job, make_payload(idx))] = idx
                    except Exception as exc:  # pool already broken
                        submit_failed.append((idx, exc))
                queue = []
                for idx, exc in submit_failed:
                    results[idx] = JobResult(
                        spec=specs[idx],
                        status="error",
                        attempts=attempts[idx] + 1,
                        error_type=type(exc).__name__,
                        error_message=f"pool submission failed: {exc}",
                    )
                for fut in as_completed(futures):
                    idx = futures[fut]
                    attempts[idx] += 1
                    spec = specs[idx]
                    try:
                        out = fut.result()
                    except Exception as exc:
                        # Worker died without returning (e.g. hard crash,
                        # unpicklable payload): structured failure, pool-level.
                        out = {
                            "status": "error",
                            "error_type": type(exc).__name__,
                            "error_message": f"pool-level failure: {exc}",
                            "error_traceback": "",
                        }
                    if out.get("status") == "timeout":
                        METRICS.inc("runtime.worker.timeouts")
                    if out.get("status") != "ok" and attempts[idx] <= self.retries:
                        stats.retries_used += 1
                        METRICS.inc("runtime.worker.retries")
                        queue.append(idx)
                        continue
                    # Failure payloads may predate graph loading in the
                    # worker; the parent resolved the input, so report it.
                    graph, fingerprint, _ = resolved[spec.source]
                    out.setdefault("graph_n", graph.n)
                    out.setdefault("graph_m", graph.m)
                    if not out.get("fingerprint"):
                        out["fingerprint"] = fingerprint
                    results[idx] = _result_from_payload_dict(
                        spec, out, attempts=attempts[idx]
                    )
                    if out.get("status") == "ok" and self.cache is not None:
                        self._store(keys[idx], results[idx], out)

    def _store(self, key: str, result: JobResult, out: dict) -> None:
        job = result.to_dict()
        job.pop("spec", None)  # cache is content-addressed, not spec-addressed
        job.pop("attempts", None)
        job.pop("cache_hit", None)
        self.cache.put(
            key,
            job=job,
            arrays=out.get("arrays", {}),
            result_meta=out.get("result_meta"),
        )
