"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``solve``      one problem under one cost model through the ``repro.api``
               registry (``--list`` shows every (problem, model) entry)
``mis``        deterministic MIS on an edge-list file (or a generated graph)
``matching``   deterministic maximal matching
``vc``         2-approximate vertex cover
``coloring``   (Delta+1)-coloring
``demo``       run on a generated G(n, p) without needing an input file
``crossmodel`` bill one input under MPC / CONGESTED CLIQUE / CONGEST
``batch``      run a named workload suite through the parallel runtime
``serve``      run the always-on solver service (HTTP or stdio JSON lines)
``cache``      inspect / clear the content-addressed result cache
``store``      inspect / verify / gc the out-of-core graph store
``trace``      record / summarize / diff / export traces, check conformance
``docs``       regenerate docs/THEORY.md + docs/REGISTRY.md from the registry

Every solve-shaped command routes through :func:`repro.api.solve`; the
problem-specific commands (``mis`` / ``matching`` / ``vc`` / ``coloring``)
are convenience spellings of ``solve --model simulated``.

Examples::

    python -m repro solve --list
    python -m repro solve --problem mis --model cclique --n 300 --p 0.03
    python -m repro demo --n 500 --p 0.02 --algo mis
    python -m repro mis graph.edges --eps 0.6 --out mis.txt
    python -m repro matching graph.edges --force lowdeg
    python -m repro crossmodel --n 300 --p 0.03 --problem mis
    python -m repro batch --suite cross-model --workers 4
    python -m repro batch --suite large-sweep --store-dir /tmp/graphs --workers 4
    python -m repro serve --port 8750 --workers 2
    python -m repro serve --demo
    python -m repro cache stats
    python -m repro store stats --store-dir /tmp/graphs
    python -m repro trace record --problem mis --model mpc-engine --out t.jsonl
    python -m repro trace summarize t.jsonl
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from . import __version__
from .api import REGISTRY, SolveRequest, solve
from .core import Params
from .graphs import Graph, gnp_random_graph, read_edge_list


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--eps", type=float, default=0.5, help="space exponent (S = Theta(n^eps))")
    p.add_argument("--force", choices=["general", "lowdeg"], default=None,
                   help="pin the algorithm path instead of Theorem-1 dispatch")
    p.add_argument("--out", type=str, default=None, help="write the solution to a file")
    p.add_argument("--report", type=str, default=None,
                   help="write a full run report (markdown) to a file")


def _load_graph(args) -> Graph:
    if getattr(args, "input", None):
        return read_edge_list(args.input)
    return gnp_random_graph(args.n, args.p, seed=args.seed)


def _maybe_report(args, res, title: str) -> None:
    if getattr(args, "report", None):
        from .analysis import run_report

        with open(args.report, "w") as fh:
            fh.write(run_report(res, title=title))
        print(f"  report written to {args.report}")


def _report(kind: str, g: Graph, res) -> None:
    """Summary lines from a SolveResult envelope."""
    print(f"{kind} on {g}")
    print(f"  verified: {res.verified}")
    print(f"  iterations/phases: {res.iterations}")
    print(f"  charged MPC rounds: {res.rounds}")
    print(f"  words moved: {res.words_moved}")
    print(f"  space high-water: {res.max_machine_words}/{res.space_limit} words")
    raw = res.raw
    if raw is not None and getattr(raw, "fidelity_events", None):
        print(f"  fidelity events: {len(raw.fidelity_events)}")


def _emit_json(dest: str, payload: dict) -> None:
    """Write ``payload`` as JSON to a path, or to stdout when dest is ``-``."""
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if dest == "-":
        sys.stdout.write(text)
    else:
        with open(dest, "w") as fh:
            fh.write(text)
        print(f"  json written to {dest}")


def _write(path: str | None, lines) -> None:
    if path is None:
        return
    with open(path, "w") as fh:
        for line in lines:
            fh.write(f"{line}\n")
    print(f"  solution written to {path}")


def _simulated(args, problem: str):
    """Run one simulated-model solve through the facade."""
    g = _load_graph(args)
    return g, solve(
        SolveRequest(
            problem=problem,
            model="simulated",
            graph=g,
            eps=args.eps,
            force=getattr(args, "force", None),
        )
    )


def cmd_mis(args) -> int:
    g, res = _simulated(args, "mis")
    _report("MIS", g, res)
    print(f"  |I| = {res.solution_size}")
    _write(args.out, res.solution.tolist())
    _maybe_report(args, res.raw, f"MIS on {g}")
    return 0 if res.verified else 1


def cmd_matching(args) -> int:
    g, res = _simulated(args, "matching")
    _report("maximal matching", g, res)
    print(f"  |M| = {res.solution_size}")
    _write(args.out, (f"{u} {v}" for u, v in res.solution.tolist()))
    _maybe_report(args, res.raw, f"maximal matching on {g}")
    return 0 if res.verified else 1


def cmd_vc(args) -> int:
    g, res = _simulated(args, "vc")
    vc = res.raw
    print(f"vertex cover on {g}")
    print(f"  verified: {res.verified}; |cover| = {vc.size} "
          f"<= 2 * {vc.lower_bound()} (2-approx cert)")
    print(f"  charged MPC rounds: {res.rounds}")
    _write(args.out, res.solution.tolist())
    return 0 if res.verified else 1


def cmd_coloring(args) -> int:
    g, res = _simulated(args, "coloring")
    col = res.raw
    print(f"(Delta+1)-coloring on {g}")
    print(f"  proper: {res.verified}; palette {col.num_colors}, "
          f"used {res.solution_size}")
    print(f"  charged MPC rounds: {res.rounds}")
    _write(args.out, res.solution.tolist())
    return 0 if res.verified else 1


def cmd_solve(args) -> int:
    if args.list:
        from .runtime import runtime_problem_name

        print(f"{'problem':9s} {'model':11s} {'batch name':17s} capabilities")
        for e in REGISTRY.entries():
            print(
                f"{e.problem:9s} {e.model:11s} "
                f"{runtime_problem_name(e.problem, e.model):17s} "
                f"{e.capabilities.flags()}"
            )
            if args.verbose:
                print(f"  {e.description}  [{e.legacy_entry}]")
        return 0
    if not args.problem:
        print("error: --problem required (or --list to see entries)",
              file=sys.stderr)
        return 2

    options = {}
    if args.charge_mode:
        options["charge_mode"] = args.charge_mode
    if args.mode:
        options["mode"] = args.mode
    from .api import ExecutionConfig

    config = ExecutionConfig(
        congest_pipeline_seed_fix=True if args.pipeline_seed_fix else None
    )
    g = _load_graph(args)
    try:
        # Request validation + registry lookup are the usage-error surface;
        # the solve itself runs outside this try so real solver failures
        # keep their tracebacks.
        request = SolveRequest(
            problem=args.problem,
            model=args.model,
            graph=g,
            eps=args.eps,
            force=args.force,
            paper_rule=args.paper_rule,
            config=config,
            options=options,
        )
        REGISTRY.get(request.problem, request.model)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return 2
    res = solve(request)
    print(f"solve {args.problem} under {args.model} on {g}")
    print(f"  verified: {res.verified} ({res.certificate.get('verifier')})")
    print(f"  |solution| = {res.solution_size} ({res.solution_kind})")
    print(f"  rounds: {res.rounds}  iterations/phases: {res.iterations}")
    print(f"  words moved: {res.words_moved}")
    print(f"  space high-water: {res.max_machine_words}/{res.space_limit} words")
    if res.path:
        print(f"  path: {res.path}")
    print(f"  wall time: {res.wall_time:.3f}s")
    if res.trace is not None:
        print(f"  trace: {len(res.trace)} spans recorded")
    if args.json:
        meta, _ = res.to_payload()
        _emit_json(args.json, meta)
    if args.out:
        if res.solution_kind == "pairs":
            _write(args.out, (f"{u} {v}" for u, v in res.solution.tolist()))
        else:
            _write(args.out, res.solution.tolist())
    return 0 if res.verified else 1


def cmd_crossmodel(args) -> int:
    from .analysis import cross_model_report
    from .models import cross_model_run

    g = _load_graph(args)
    run = cross_model_run(
        g,
        args.problem,
        params=Params(eps=args.eps),
        include_engine=args.engine,
    )
    text = cross_model_report(run, title=f"cross-model {args.problem} on {g}")
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"  report written to {args.out}")
    if args.json:
        _emit_json(args.json, run.to_dict())
    return 0 if run.all_verified else 1


DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
DEFAULT_STORE_DIR = os.environ.get("REPRO_GRAPH_STORE", ".repro-graphs")


def cmd_batch(args) -> int:
    from .runtime import ResultCache, Scheduler, build_suite, list_suites

    if args.list:
        for suite in list_suites():
            print(f"{suite.name:20s} {suite.description}")
        return 0
    if not args.suite:
        print("error: --suite NAME required (or --list to see suites)",
              file=sys.stderr)
        return 2

    try:
        specs = build_suite(args.suite)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    try:
        sched = Scheduler(
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            cache=cache,
            store=args.store_dir,  # None -> follow REPRO_GRAPH_STORE
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    batch = sched.run(specs)
    st = batch.stats
    for r in batch.results:
        mark = "HIT " if r.cache_hit else ("ok  " if r.ok else r.status[:4])
        line = (f"  [{mark}] {r.spec.tag or r.spec.source.label():32s} "
                f"n={r.graph_n:<6d} rounds={r.rounds:<4d} {r.wall_time:.3f}s")
        if not r.ok:
            line += f"  {r.error_type}: {r.error_message}"
        print(line)
    print(f"batch '{args.suite}': {st.ok}/{st.total} ok "
          f"({st.errors} errors, {st.timeouts} timeouts) "
          f"with {st.workers} workers")
    print(f"  wall time: {st.wall_time:.3f}s ({st.jobs_per_second:.1f} jobs/s)")
    print(f"  cache hits: {st.cache_hits}/{st.total} "
          f"({st.cache_hit_rate:.0%})")
    print(f"  shipped: {st.bytes_shipped} bytes to workers")
    if sched.store is not None:
        line = (f"  store: {st.store_hits} hits, {st.store_misses} built "
                f"({sched.store.root})")
        if st.store_fallbacks:
            line += f", {st.store_fallbacks} shard fallbacks (!)"
        print(line)

    if args.out:
        with open(args.out, "w") as fh:
            for r in batch.results:
                fh.write(r.to_json() + "\n")
        print(f"  results written to {args.out}")
    if args.json:
        payload = {
            "suite": args.suite,
            "stats": st.to_dict(),
            "jobs": [r.to_dict() for r in batch.results],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  batch json written to {args.json}")
    if args.report:
        from .analysis import batch_report

        with open(args.report, "w") as fh:
            fh.write(batch_report(batch.results, st, title=f"batch: {args.suite}"))
        print(f"  report written to {args.report}")
    return 0 if batch.all_ok else 1


def cmd_docs(args) -> int:
    from .analysis.docgen import check_docs, write_docs

    if args.check:
        stale = check_docs(args.out)
        if stale:
            print(
                f"docs out of date in {args.out}/: {', '.join(stale)} "
                f"(regenerate with `python -m repro docs`)",
                file=sys.stderr,
            )
            return 1
        print(f"docs up to date in {args.out}/")
        return 0
    for path in write_docs(args.out):
        print(f"  wrote {path}")
    return 0


def cmd_cache(args) -> int:
    from .runtime import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        dropped = cache.clear()
        print(f"cache {args.cache_dir}: cleared {dropped} entries")
        return 0
    size = cache.disk_usage()
    print(f"cache {args.cache_dir}")
    print(f"  entries: {len(cache)} (max {cache.max_entries})")
    print(f"  disk: {size / 1024:.1f} KiB")
    return 0


def cmd_store(args) -> int:
    from .graphs.store import GraphStore

    store = GraphStore(args.store_dir)
    if args.action == "gc":
        res = store.gc(max_bytes=args.max_bytes)
        print(f"store {args.store_dir}: gc")
        print(f"  removed: {res['removed_tmp']} tmp dirs, "
              f"{res['removed_orphans']} orphan objects, "
              f"{len(res['evicted'])} evicted over budget")
        print(f"  kept: {res['entries']} graphs, "
              f"{res['disk_bytes'] / 1e6:.1f} MB")
        return 0
    if args.action == "verify":
        bad = 0
        for key in store.keys():
            problems = store.verify(key)
            if problems:
                bad += 1
                print(f"  CORRUPT {key[:16]}..: {'; '.join(problems)}")
        print(f"store {args.store_dir}: {len(store) - bad}/{len(store)} "
              f"graphs verified clean")
        return 1 if bad else 0
    stats = store.stats()
    print(f"store {args.store_dir}")
    budget = (f"{stats['max_bytes'] / 1e6:.1f} MB"
              if stats["max_bytes"] is not None else "unbounded")
    print(f"  graphs: {stats['entries']}  "
          f"disk: {stats['disk_bytes'] / 1e6:.1f} MB  budget: {budget}")
    for obj in stats["objects"]:
        shards = obj["shards"]
        print(f"  {obj['fingerprint'][:16]}..  n={obj['n']:<9} m={obj['m']:<10} "
              f"{obj['bytes'] / 1e6:8.1f} MB  {shards:3d} shard"
              f"{'s' if shards != 1 else ''}  {obj['source']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deterministic MPC graph algorithms (Czumaj-Davies-Parter, SPAA 2020)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sv = sub.add_parser(
        "solve",
        help="solve one problem under one cost model via the repro.api registry",
    )
    sv.add_argument("--list", action="store_true",
                    help="list every (problem, model) registry entry")
    sv.add_argument("--verbose", action="store_true",
                    help="with --list: include descriptions and legacy entry points")
    sv.add_argument("--problem", type=str, default=None,
                    help="problem key (see --list)")
    sv.add_argument("--model", type=str, default="simulated",
                    help="cost model key (default: simulated)")
    sv.add_argument("--input", type=str, default=None,
                    help="edge-list file (generated G(n, p) otherwise)")
    sv.add_argument("--n", type=int, default=300)
    sv.add_argument("--p", type=float, default=0.03)
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument("--eps", type=float, default=0.5)
    sv.add_argument("--force", choices=["general", "lowdeg"], default=None,
                    help="pin the Theorem-1 path (simulated model)")
    sv.add_argument("--paper-rule", action="store_true",
                    help="use the literal Delta <= n^delta dispatch rule")
    sv.add_argument("--charge-mode", choices=["ours", "chps"], default=None,
                    help="CONGESTED CLIQUE round charging (default: ours)")
    sv.add_argument("--mode", choices=["voting", "color-compressed"], default=None,
                    help="CONGEST seed pipeline (default: color-compressed)")
    sv.add_argument("--pipeline-seed-fix", action="store_true",
                    help="CONGEST ablation: O(D + seed_bits) BFS-pipelined "
                         "seed broadcast instead of 2*D*seed_bits")
    sv.add_argument("--out", type=str, default=None,
                    help="write the solution to a file")
    sv.add_argument("--json", type=str, default=None,
                    help="write the SolveResult envelope (sans arrays) as "
                         "JSON; - for stdout")
    sv.set_defaults(fn=cmd_solve)

    for name, fn in (
        ("mis", cmd_mis),
        ("matching", cmd_matching),
        ("vc", cmd_vc),
        ("coloring", cmd_coloring),
    ):
        p = sub.add_parser(name, help=f"deterministic {name} on an edge-list file")
        p.add_argument("input", help="edge-list file (u v per line, # n=.. header)")
        _add_common(p)
        p.set_defaults(fn=fn)

    demo = sub.add_parser("demo", help="run on a generated G(n, p)")
    demo.add_argument("--n", type=int, default=500)
    demo.add_argument("--p", type=float, default=0.02)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--algo", choices=["mis", "matching", "vc", "coloring"], default="mis"
    )
    _add_common(demo)
    demo.set_defaults(
        fn=lambda a: {"mis": cmd_mis, "matching": cmd_matching,
                      "vc": cmd_vc, "coloring": cmd_coloring}[a.algo](a)
    )

    xm = sub.add_parser(
        "crossmodel",
        help="bill one input under MPC / CONGESTED CLIQUE / CONGEST",
    )
    xm.add_argument("--input", type=str, default=None,
                    help="edge-list file (generated G(n, p) otherwise)")
    xm.add_argument("--n", type=int, default=300)
    xm.add_argument("--p", type=float, default=0.03)
    xm.add_argument("--seed", type=int, default=0)
    xm.add_argument("--eps", type=float, default=0.5)
    xm.add_argument("--problem", choices=["mis", "matching"], default="mis")
    xm.add_argument("--engine", action="store_true",
                    help="add the literal MPC engine as a fourth row")
    xm.add_argument("--out", type=str, default=None,
                    help="write the report to a file")
    xm.add_argument("--json", type=str, default=None,
                    help="write the run record as JSON; - for stdout")
    xm.set_defaults(fn=cmd_crossmodel)

    batch = sub.add_parser(
        "batch", help="run a named workload suite through the parallel runtime"
    )
    batch.add_argument("--suite", type=str, default=None,
                       help="workload suite name (see --list)")
    batch.add_argument("--list", action="store_true", help="list known suites")
    batch.add_argument("--workers", type=int, default=1,
                       help="worker processes (default 1)")
    batch.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds")
    batch.add_argument("--retries", type=int, default=0,
                       help="extra attempts per failing job")
    batch.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR,
                       help="result cache directory (REPRO_CACHE_DIR)")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the result cache for this run")
    batch.add_argument("--store-dir", type=str, default=None,
                       help="out-of-core graph store directory; workers mmap "
                            "CSR shards instead of receiving pickled npz "
                            "buffers (default: REPRO_GRAPH_STORE if set)")
    batch.add_argument("--out", type=str, default=None,
                       help="write per-job JobResult JSONL to a file")
    batch.add_argument("--json", type=str, default=None,
                       help="write batch stats + jobs as one JSON document")
    batch.add_argument("--report", type=str, default=None,
                       help="write a batch-level markdown report")
    batch.set_defaults(fn=cmd_batch)

    cache = sub.add_parser(
        "cache", help="inspect or clear the content-addressed result cache"
    )
    cache.add_argument("action", choices=["stats", "clear"], nargs="?",
                       default="stats")
    cache.add_argument("--cache-dir", type=str, default=DEFAULT_CACHE_DIR,
                       help="result cache directory (REPRO_CACHE_DIR)")
    cache.set_defaults(fn=cmd_cache)

    storep = sub.add_parser(
        "store", help="inspect, verify, or garbage-collect the graph store"
    )
    storep.add_argument("action", choices=["stats", "gc", "verify"],
                        nargs="?", default="stats")
    storep.add_argument("--store-dir", type=str, default=DEFAULT_STORE_DIR,
                        help="graph store directory (REPRO_GRAPH_STORE)")
    storep.add_argument("--max-bytes", type=int, default=None,
                        help="with gc: evict least-recently-opened graphs "
                             "until under this disk budget")
    storep.set_defaults(fn=cmd_store)

    docs = sub.add_parser(
        "docs",
        help="regenerate docs/THEORY.md + docs/REGISTRY.md from the registry",
    )
    docs.add_argument("--out", type=str, default="docs",
                      help="output directory (default: docs)")
    docs.add_argument("--check", action="store_true",
                      help="verify the generated docs are current "
                           "(exit 1 on drift) instead of writing")
    docs.set_defaults(fn=cmd_docs)

    from .obs.cli import add_trace_parser
    from .serve.cli import add_serve_parser

    add_trace_parser(sub)
    add_serve_parser(sub)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
