"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``mis``        deterministic MIS on an edge-list file (or a generated graph)
``matching``   deterministic maximal matching
``vc``         2-approximate vertex cover
``coloring``   (Delta+1)-coloring
``demo``       run on a generated G(n, p) without needing an input file

Examples::

    python -m repro demo --n 500 --p 0.02 --algo mis
    python -m repro mis graph.edges --eps 0.6 --out mis.txt
    python -m repro matching graph.edges --force lowdeg
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import __version__
from .core import (
    Params,
    deterministic_coloring,
    deterministic_vertex_cover,
)
from .core.api import maximal_independent_set, maximal_matching
from .graphs import Graph, gnp_random_graph, read_edge_list
from .verify import verify_matching_pairs, verify_mis_nodes


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--eps", type=float, default=0.5, help="space exponent (S = Theta(n^eps))")
    p.add_argument("--force", choices=["general", "lowdeg"], default=None,
                   help="pin the algorithm path instead of Theorem-1 dispatch")
    p.add_argument("--out", type=str, default=None, help="write the solution to a file")
    p.add_argument("--report", type=str, default=None,
                   help="write a full run report (markdown) to a file")


def _load_graph(args) -> Graph:
    if getattr(args, "input", None):
        return read_edge_list(args.input)
    return gnp_random_graph(args.n, args.p, seed=args.seed)


def _maybe_report(args, res, title: str) -> None:
    if getattr(args, "report", None):
        from .analysis import run_report

        with open(args.report, "w") as fh:
            fh.write(run_report(res, title=title))
        print(f"  report written to {args.report}")


def _report(kind: str, g: Graph, res, ok: bool) -> None:
    print(f"{kind} on {g}")
    print(f"  verified: {ok}")
    print(f"  iterations/phases: {res.iterations}")
    print(f"  charged MPC rounds: {res.rounds}")
    print(f"  space high-water: {res.max_machine_words}/{res.space_limit} words")
    if res.fidelity_events:
        print(f"  fidelity events: {len(res.fidelity_events)}")


def _write(path: str | None, lines) -> None:
    if path is None:
        return
    with open(path, "w") as fh:
        for line in lines:
            fh.write(f"{line}\n")
    print(f"  solution written to {path}")


def cmd_mis(args) -> int:
    g = _load_graph(args)
    params = Params(eps=args.eps)
    res = maximal_independent_set(g, params=params, force=args.force)
    ok = verify_mis_nodes(g, res.independent_set)
    _report("MIS", g, res, ok)
    print(f"  |I| = {len(res.independent_set)}")
    _write(args.out, res.independent_set.tolist())
    _maybe_report(args, res, f"MIS on {g}")
    return 0 if ok else 1


def cmd_matching(args) -> int:
    g = _load_graph(args)
    params = Params(eps=args.eps)
    res = maximal_matching(g, params=params, force=args.force)
    ok = verify_matching_pairs(g, res.pairs)
    _report("maximal matching", g, res, ok)
    print(f"  |M| = {res.pairs.shape[0]}")
    _write(args.out, (f"{u} {v}" for u, v in res.pairs.tolist()))
    _maybe_report(args, res, f"maximal matching on {g}")
    return 0 if ok else 1


def cmd_vc(args) -> int:
    g = _load_graph(args)
    vc = deterministic_vertex_cover(g, eps=args.eps)
    from .core.derived import is_vertex_cover

    ok = is_vertex_cover(g, vc.cover)
    print(f"vertex cover on {g}")
    print(f"  verified: {ok}; |cover| = {vc.size} <= 2 * {vc.lower_bound()} (2-approx cert)")
    print(f"  charged MPC rounds: {vc.rounds}")
    _write(args.out, vc.cover.tolist())
    return 0 if ok else 1


def cmd_coloring(args) -> int:
    g = _load_graph(args)
    res = deterministic_coloring(g, eps=args.eps)
    proper = bool(
        np.all(res.colors[g.edges_u] != res.colors[g.edges_v])
    ) if g.m else True
    print(f"(Delta+1)-coloring on {g}")
    print(f"  proper: {proper}; palette {res.num_colors}, "
          f"used {len(set(res.colors.tolist()))}")
    print(f"  charged MPC rounds: {res.rounds}")
    _write(args.out, res.colors.tolist())
    return 0 if proper else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Deterministic MPC graph algorithms (Czumaj-Davies-Parter, SPAA 2020)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn in (
        ("mis", cmd_mis),
        ("matching", cmd_matching),
        ("vc", cmd_vc),
        ("coloring", cmd_coloring),
    ):
        p = sub.add_parser(name, help=f"deterministic {name} on an edge-list file")
        p.add_argument("input", help="edge-list file (u v per line, # n=.. header)")
        _add_common(p)
        p.set_defaults(fn=fn)

    demo = sub.add_parser("demo", help="run on a generated G(n, p)")
    demo.add_argument("--n", type=int, default=500)
    demo.add_argument("--p", type=float, default=0.02)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--algo", choices=["mis", "matching", "vc", "coloring"], default="mis"
    )
    _add_common(demo)
    demo.set_defaults(
        fn=lambda a: {"mis": cmd_mis, "matching": cmd_matching,
                      "vc": cmd_vc, "coloring": cmd_coloring}[a.algo](a)
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
