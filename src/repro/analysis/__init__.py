"""Analysis: theory bounds, curve fits, table rendering, and doc generation."""

from .docgen import check_docs, registry_markdown, theory_markdown, write_docs
from .progress import LinearFit, fit_geometric_decay, fit_linear
from .report import batch_report, cross_model_report, run_report
from .tables import format_row, render_series, render_table
from .theory import (
    lowdeg_round_bound,
    matching_iteration_bound,
    mis_iteration_bound,
    per_machine_space,
    seed_bits_colors,
    seed_bits_ids,
    total_space_bound,
)

__all__ = [
    "LinearFit",
    "batch_report",
    "check_docs",
    "cross_model_report",
    "fit_geometric_decay",
    "fit_linear",
    "format_row",
    "lowdeg_round_bound",
    "matching_iteration_bound",
    "mis_iteration_bound",
    "per_machine_space",
    "registry_markdown",
    "render_series",
    "render_table",
    "run_report",
    "seed_bits_colors",
    "seed_bits_ids",
    "theory_markdown",
    "total_space_bound",
    "write_docs",
]
