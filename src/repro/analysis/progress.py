"""Curve fits for progress traces and scaling sweeps.

Two fits cover every figure-style claim:

* geometric decay of the edge count across iterations (the per-iteration
  constant-fraction progress of Lemmas 13/21) -- fit ``log m_t ~ t``;
* affine growth of round counts in ``log n`` / ``log Delta`` (the O(log n) /
  O(log Delta) theorems) -- fit ``rounds ~ a * x + b`` with an r^2 quality
  score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearFit", "fit_geometric_decay", "fit_linear"]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares fit ``y ~ slope * x + intercept``."""

    slope: float
    intercept: float
    r2: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def fit_linear(xs, ys) -> LinearFit:
    """Ordinary least squares with an r^2 score."""
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (x, y) points")
    a = np.stack([x, np.ones_like(x)], axis=1)
    coef, *_ = np.linalg.lstsq(a, y, rcond=None)
    pred = a @ coef
    ss_res = float(((y - pred) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(slope=float(coef[0]), intercept=float(coef[1]), r2=r2)


def fit_geometric_decay(edge_trace) -> float:
    """Per-iteration retention rate ``r`` from ``m_t ~ m_0 * r^t``.

    Returns the geometric-mean ratio of consecutive positive trace entries;
    a value bounded away from 1 certifies constant-fraction progress.
    """
    trace = [t for t in edge_trace if t > 0]
    if len(trace) < 2:
        return 0.0
    ratios = np.asarray(trace[1:], dtype=np.float64) / np.asarray(
        trace[:-1], dtype=np.float64
    )
    ratios = ratios[ratios > 0]
    if ratios.size == 0:
        return 0.0
    return float(np.exp(np.log(ratios).mean()))
