"""Human-readable run reports from result records.

Turns a :class:`~repro.core.records.MISResult` /
:class:`~repro.core.records.MatchingResult` into a markdown-ish text report:
summary, per-iteration progress table, sparsification stage table, round
ledger breakdown, and any fidelity events.  Used by the CLI (``--report``)
and handy in notebooks; everything is derived from the records, so the
report is as deterministic as the run.
"""

from __future__ import annotations

from ..core.records import MatchingResult, MISResult
from .tables import render_table

__all__ = ["run_report"]


def run_report(result: MISResult | MatchingResult, title: str | None = None) -> str:
    """Render a full text report for a finished run."""
    is_mis = isinstance(result, MISResult)
    kind = "MIS" if is_mis else "maximal matching"
    lines: list[str] = []
    lines.append(f"# {title or f'deterministic {kind} run report'}")
    lines.append("")

    size = (
        len(result.independent_set) if is_mis else result.pairs.shape[0]
    )
    lines.append(f"* solution size: {size}")
    lines.append(f"* iterations: {result.iterations}")
    lines.append(f"* charged MPC rounds: {result.rounds}")
    lines.append(
        f"* machine space high-water: {result.max_machine_words}"
        f"/{result.space_limit} words"
    )
    if is_mis and result.stages_compressed:
        lines.append(
            f"* Section-5 run: {result.stages_compressed} compressed stages, "
            f"{result.num_colors} colors"
        )
    lines.append("")

    if result.records:
        rows = [
            (
                rec.iteration,
                rec.edges_before,
                rec.edges_after,
                f"{rec.removed_fraction:.3f}",
                rec.i_star,
                len(rec.stages),
                f"{rec.selection_value:.1f}",
                f"{rec.selection_target:.1f}",
                rec.selection_trials,
                "y" if rec.selection_satisfied else "n",
            )
            for rec in result.records
        ]
        lines.append(
            render_table(
                "per-iteration progress",
                ["it", "|E| before", "|E| after", "removed", "i*", "stages",
                 "objective", "target", "trials", "ok"],
                rows,
            )
        )
        lines.append("")

    stage_rows = [
        (
            rec.iteration,
            s.stage,
            s.kind,
            s.items_before,
            s.items_after,
            f"{s.degree_decay_measured:.3f}",
            f"{s.degree_decay_ideal:.3f}",
            "y" if s.all_good else "n",
            s.trials,
        )
        for rec in result.records
        for s in rec.stages
    ]
    if stage_rows:
        lines.append(
            render_table(
                "sparsification stages",
                ["it", "j", "kind", "before", "after", "decay", "ideal",
                 "all good", "trials"],
                stage_rows,
            )
        )
        lines.append("")

    ledger_rows = sorted(
        (k, v) for k, v in result.rounds_by_category.items() if k != "total"
    )
    if ledger_rows:
        lines.append(render_table("round ledger", ["category", "rounds"], ledger_rows))
        lines.append("")

    if result.fidelity_events:
        lines.append("## fidelity events")
        for e in result.fidelity_events:
            lines.append(f"* {e}")
        lines.append("")

    return "\n".join(lines)
