"""Human-readable run reports from result records.

Turns a :class:`~repro.core.records.MISResult` /
:class:`~repro.core.records.MatchingResult` into a markdown-ish text report:
summary, per-iteration progress table, sparsification stage table, round
ledger breakdown, and any fidelity events.  Used by the CLI (``--report``)
and handy in notebooks; everything is derived from the records, so the
report is as deterministic as the run.

:func:`batch_report` does the same for a whole runtime batch: per-problem
aggregates (success rates, cache economics, round/wall-time distributions)
plus a per-job table, consumed by ``repro batch --report``.

:func:`cross_model_report` renders one
:class:`~repro.models.crossmodel.CrossModelRun` — the same input billed
under MPC, CONGESTED CLIQUE and CONGEST — as a unified
round/communication table, the side-by-side comparison the paper states in
prose.
"""

from __future__ import annotations

from ..core.records import MatchingResult, MISResult
from .tables import render_table

__all__ = ["batch_report", "cross_model_report", "run_report"]


def run_report(result: MISResult | MatchingResult, title: str | None = None) -> str:
    """Render a full text report for a finished run."""
    is_mis = isinstance(result, MISResult)
    kind = "MIS" if is_mis else "maximal matching"
    lines: list[str] = []
    lines.append(f"# {title or f'deterministic {kind} run report'}")
    lines.append("")

    size = (
        len(result.independent_set) if is_mis else result.pairs.shape[0]
    )
    lines.append(f"* solution size: {size}")
    lines.append(f"* iterations: {result.iterations}")
    lines.append(f"* charged MPC rounds: {result.rounds}")
    lines.append(
        f"* machine space high-water: {result.max_machine_words}"
        f"/{result.space_limit} words"
    )
    if is_mis and result.stages_compressed:
        lines.append(
            f"* Section-5 run: {result.stages_compressed} compressed stages, "
            f"{result.num_colors} colors"
        )
    lines.append("")

    if result.records:
        rows = [
            (
                rec.iteration,
                rec.edges_before,
                rec.edges_after,
                f"{rec.removed_fraction:.3f}",
                rec.i_star,
                len(rec.stages),
                f"{rec.selection_value:.1f}",
                f"{rec.selection_target:.1f}",
                rec.selection_trials,
                "y" if rec.selection_satisfied else "n",
            )
            for rec in result.records
        ]
        lines.append(
            render_table(
                "per-iteration progress",
                ["it", "|E| before", "|E| after", "removed", "i*", "stages",
                 "objective", "target", "trials", "ok"],
                rows,
            )
        )
        lines.append("")

    stage_rows = [
        (
            rec.iteration,
            s.stage,
            s.kind,
            s.items_before,
            s.items_after,
            f"{s.degree_decay_measured:.3f}",
            f"{s.degree_decay_ideal:.3f}",
            "y" if s.all_good else "n",
            s.trials,
        )
        for rec in result.records
        for s in rec.stages
    ]
    if stage_rows:
        lines.append(
            render_table(
                "sparsification stages",
                ["it", "j", "kind", "before", "after", "decay", "ideal",
                 "all good", "trials"],
                stage_rows,
            )
        )
        lines.append("")

    ledger_rows = sorted(
        (k, v) for k, v in result.rounds_by_category.items() if k != "total"
    )
    if ledger_rows:
        lines.append(render_table("round ledger", ["category", "rounds"], ledger_rows))
        lines.append("")

    if result.fidelity_events:
        lines.append("## fidelity events")
        for e in result.fidelity_events:
            lines.append(f"* {e}")
        lines.append("")

    return "\n".join(lines)


def batch_report(results, stats=None, title: str | None = None) -> str:
    """Render a batch-level report for runtime job results.

    ``results`` is an iterable of :class:`~repro.runtime.spec.JobResult`;
    ``stats`` an optional :class:`~repro.runtime.scheduler.BatchStats`.
    (Duck-typed to keep analysis import-independent of the runtime.)
    """
    results = list(results)
    lines: list[str] = [f"# {title or 'batch run report'}", ""]

    ok = [r for r in results if r.status == "ok"]
    hits = [r for r in results if r.cache_hit]
    lines.append(f"* jobs: {len(results)} ({len(ok)} ok, {len(results) - len(ok)} failed)")
    lines.append(
        f"* cache hits: {len(hits)}/{len(results)} "
        f"({len(hits) / len(results):.0%})" if results else "* cache hits: 0/0"
    )
    if stats is not None:
        lines.append(
            f"* batch wall time: {stats.wall_time:.3f}s "
            f"({stats.jobs_per_second:.1f} jobs/s, {stats.workers} workers)"
        )
        if stats.retries_used:
            lines.append(f"* retries used: {stats.retries_used}")
    lines.append("")

    # Per-problem aggregates.
    by_problem: dict[str, list] = {}
    for r in results:
        by_problem.setdefault(r.spec.problem, []).append(r)
    agg_rows = []
    for problem in sorted(by_problem):
        rs = by_problem[problem]
        good = [r for r in rs if r.status == "ok"]
        mean_wall = sum(r.wall_time for r in rs) / len(rs)
        max_rounds = max((r.rounds for r in good), default=0)
        agg_rows.append(
            (
                problem,
                len(rs),
                len(good),
                sum(1 for r in rs if r.cache_hit),
                f"{mean_wall:.3f}",
                max_rounds,
            )
        )
    lines.append(
        render_table(
            "per-problem aggregates",
            ["problem", "jobs", "ok", "cached", "mean wall s", "max rounds"],
            agg_rows,
        )
    )
    lines.append("")

    job_rows = [
        (
            r.spec.tag or r.spec.source.label(),
            r.spec.problem,
            r.graph_n,
            r.graph_m,
            r.status,
            "y" if r.cache_hit else "n",
            r.rounds,
            f"{r.wall_time:.3f}",
            "y" if r.verified else "n",
        )
        for r in results
    ]
    lines.append(
        render_table(
            "jobs",
            ["job", "problem", "n", "m", "status", "cached", "rounds", "wall s", "ver"],
            job_rows,
        )
    )
    lines.append("")

    failures = [r for r in results if r.status != "ok"]
    if failures:
        lines.append("## failures")
        for r in failures:
            lines.append(
                f"* {r.spec.tag or r.spec.source.label()}: "
                f"[{r.status}] {r.error_type}: {r.error_message}"
            )
        lines.append("")

    return "\n".join(lines)


def _fmt_ceiling(value) -> str:
    return str(value) if value is not None else "-"


def cross_model_report(run, title: str | None = None) -> str:
    """Render a cross-model run as a unified round/communication report.

    ``run`` is a :class:`~repro.models.crossmodel.CrossModelRun` (duck-typed
    to keep analysis import-independent of the models package): one input,
    one problem, one row per cost model.
    """
    lines: list[str] = [
        f"# {title or f'cross-model {run.problem} report'}",
        "",
        f"* input: n={run.graph_n}, m={run.graph_m}",
        f"* all solutions verified: {'yes' if run.all_verified else 'NO'}",
        "",
    ]
    sizes = dict(run.solution_sizes)
    rows = []
    for snap in run.snapshots:
        top = max(
            ((k, v) for k, v in snap.by_category.items() if k != "total"),
            key=lambda kv: kv[1],
            default=("-", 0),
        )
        rows.append(
            (
                snap.model,
                snap.rounds,
                snap.words_moved if snap.words_moved else "-",
                _fmt_ceiling(snap.space_ceiling),
                _fmt_ceiling(snap.bandwidth_ceiling),
                snap.max_words_seen if snap.max_words_seen else "-",
                sizes.get(snap.model, "-"),
                f"{top[0]} ({top[1]})",
            )
        )
    lines.append(
        render_table(
            "round / communication bill per model",
            ["model", "rounds", "words moved", "space ceil", "bw ceil",
             "max words", "|solution|", "top category"],
            rows,
        )
    )
    lines.append("")
    return "\n".join(lines)
