"""Plain-text table / series rendering for the benchmark harness.

The benchmark scripts print the paper-claim-vs-measured tables through these
helpers so every experiment's output has the same shape: a title line, an
aligned header, aligned rows, and (optionally) a footnote with the verdict.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_row", "render_series", "render_table"]


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.3f}".rstrip("0").rstrip(".")
    return str(cell)


def format_row(cells: Sequence, widths: Sequence[int]) -> str:
    return "  ".join(_fmt(c).rjust(w) for c, w in zip(cells, widths))


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    footnote: str | None = None,
) -> str:
    """Aligned plain-text table; returns the string (callers print it)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    lines = [f"== {title} =="]
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    if footnote:
        lines.append(f"-- {footnote}")
    return "\n".join(lines)


def render_series(title: str, xs: Sequence, ys: Sequence, x_name: str, y_name: str) -> str:
    """Figure-style output: one (x, y) pair per line plus a crude sparkline."""
    lines = [f"== {title} =="]
    ys_f = [float(y) for y in ys]
    lo, hi = (min(ys_f), max(ys_f)) if ys_f else (0.0, 1.0)
    span = (hi - lo) or 1.0
    for x, y in zip(xs, ys_f):
        bar = "#" * (1 + int(29 * (y - lo) / span))
        lines.append(f"{x_name}={_fmt(x):>10}  {y_name}={_fmt(y):>10}  {bar}")
    return "\n".join(lines)
