"""Closed-form theory bounds from the paper, used by benches and tests.

Each function instantiates a bound with the explicit constants the paper
derives, so measured quantities can be reported as "measured / bound" ratios
(the reproduction's analogue of matching a table's numbers).

:data:`THEORY_BOUNDS` states the same theorems symbolically — per
``(problem, model)`` registry entry, the paper's asymptotic ceiling for
each envelope total, in the expression vocabulary of
:mod:`repro.obs.symbolic`.  :func:`check_claim_dominance` machine-checks
every *declared* registry claim against its ceiling via the asymptotic
comparator (``claim ≼ bound``, i.e. :func:`~repro.obs.symbolic.compare_growth`
returns ``"lt"`` or ``"eq"`` on the sparse-graph growth schedule) — so a
registry edit that quietly loosens a claim past what the paper proves fails
the suite, and ``repro docs`` renders the verdict as a footnote column.
"""

from __future__ import annotations

import math

__all__ = [
    "THEORY_BOUNDS",
    "check_claim_dominance",
    "lowdeg_round_bound",
    "matching_iteration_bound",
    "mis_iteration_bound",
    "per_machine_space",
    "seed_bits_colors",
    "seed_bits_ids",
    "total_space_bound",
]


def matching_iteration_bound(m: int, delta: float) -> float:
    """Section 3.4: iterations ``<= log_{1/(1 - delta/536)} |E|``.

    Each matching iteration removes at least ``delta |E| / 536`` edges.
    """
    if m <= 1:
        return 1.0
    rate = 1.0 - delta / 536.0
    return math.log(m) / -math.log(rate)


def mis_iteration_bound(m: int, delta: float) -> float:
    """Section 4.4: iterations ``<= log_{1/(1 - delta^2/400)} |E|``."""
    if m <= 1:
        return 1.0
    rate = 1.0 - delta * delta / 400.0
    return math.log(m) / -math.log(rate)


def lowdeg_round_bound(
    n: int, max_degree: int, c_stage: float = 4.0, c_pre: float = 4.0
) -> float:
    """Theorem 1 shape: ``c_stage * log Delta + c_pre * log log n`` rounds."""
    d = max(max_degree, 2)
    nn = max(n, 4)
    return c_stage * math.log2(d) + c_pre * math.log2(math.log2(nn))


def per_machine_space(n: int, eps: float, factor: float = 32.0) -> int:
    """``S = factor * n^eps`` words (Theorems 7/14)."""
    return max(4, math.ceil(factor * max(n, 2) ** eps))


def total_space_bound(n: int, m: int, eps: float, factor: float = 16.0) -> int:
    """``O(m + n^{1+eps})`` total words."""
    return math.ceil(factor * (m + max(n, 2) ** (1.0 + eps)))


def seed_bits_ids(n: int) -> int:
    """Pairwise seed over ids: ``2 ceil(log2 q)``, ``q = Theta(n)``."""
    return 2 * max(1, math.ceil(math.log2(max(n, 2))))


def seed_bits_colors(num_colors: int) -> int:
    """Section-5 seed over colors: ``2 ceil(log2 q*)``, ``q* = Theta(C)``."""
    return 2 * max(1, math.ceil(math.log2(max(num_colors, 2))))


#: Paper ceilings per registry entry: ``(problem, model) -> {metric: bound}``.
#: Expressions use the :mod:`repro.obs.symbolic` vocabulary.  These are the
#: theorem statements, not the (possibly tighter) registry claims — a
#: declared claim must grow no faster than its ceiling here.
THEORY_BOUNDS: dict = {
    # Theorem 1: O(log Delta + log log n) rounds, total space O(m + n^{1+eps})
    # — one solve touches each edge O(1) times per round category.
    ("mis", "simulated"): {
        "rounds": "log(delta) + loglog(n)",
        "words_moved": "m",
    },
    ("matching", "simulated"): {
        "rounds": "log(delta) + loglog(n)",
        "words_moved": "m",
    },
    # Corollary 1 applications ride the same machinery.
    ("vc", "simulated"): {
        "rounds": "log(delta) + loglog(n)",
        "words_moved": "m",
    },
    ("coloring", "simulated"): {
        "rounds": "log(delta) + loglog(n)",
        "words_moved": "m * delta",
    },
    ("ruling2", "simulated"): {
        "rounds": "log(delta) + loglog(n)",
        "words_moved": "m",
    },
    # Theorem 2 regime: Luby on the literal engine, O(log n) rounds.
    ("mis", "mpc-engine"): {
        "rounds": "log(n)",
        "words_moved": "m * log(n)",
    },
    # Corollary 2: O(log Delta) CONGESTED CLIQUE rounds, O(n) words/round.
    ("mis", "cclique"): {
        "rounds": "log(delta)",
        "words_moved": "n * log(delta)",
    },
    ("matching", "cclique"): {
        "rounds": "log(delta)",
        "words_moved": "n * log(delta)",
    },
    # Section 6 CONGEST extension: seed agreement over a depth-D BFS tree
    # per phase.
    ("mis", "congest"): {
        "rounds": "depth * seed_bits * log(delta)",
        "words_moved": "m * seed_bits * log(delta)",
    },
    ("matching", "congest"): {
        "rounds": "depth * seed_bits * log(delta)",
        "words_moved": "m * seed_bits * log(delta)",
    },
}


def check_claim_dominance(entry=None) -> list[dict]:
    """Verify declared registry claims against :data:`THEORY_BOUNDS`.

    For every envelope-total claim of every registry entry (or just
    ``entry``), asymptotically compare claim vs ceiling on the sparse-graph
    growth schedule.  One record per claim: ``ok`` is True iff the claim is
    dominated (``compare_growth in ("lt", "eq")``), False if it *outgrows*
    the paper bound, and ``None`` when no ceiling is on file for that
    metric (surfaced, never silently skipped).
    """
    from ..api import REGISTRY
    from ..obs import symbolic

    records: list[dict] = []
    entries = [entry] if entry is not None else REGISTRY.entries()
    for e in entries:
        model = symbolic.parse_cost_model(e.cost_model)
        bounds = THEORY_BOUNDS.get((e.problem, e.model), {})
        if model is None or not model.totals:
            continue  # nothing claimed; conformance reports that gap
        for metric, expr in model.totals.items():
            bound = bounds.get(metric)
            rec = {
                "problem": e.problem,
                "model": e.model,
                "metric": metric,
                "claim": str(expr),
                "bound": bound,
            }
            if bound is None:
                rec.update(ok=None, status="no closed-form bound on file")
            else:
                order = symbolic.compare_growth(expr, bound)
                rec.update(order=order, ok=order in ("lt", "eq"))
            records.append(rec)
    return records
