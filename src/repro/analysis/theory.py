"""Closed-form theory bounds from the paper, used by benches and tests.

Each function instantiates a bound with the explicit constants the paper
derives, so measured quantities can be reported as "measured / bound" ratios
(the reproduction's analogue of matching a table's numbers).
"""

from __future__ import annotations

import math

__all__ = [
    "lowdeg_round_bound",
    "matching_iteration_bound",
    "mis_iteration_bound",
    "per_machine_space",
    "seed_bits_colors",
    "seed_bits_ids",
    "total_space_bound",
]


def matching_iteration_bound(m: int, delta: float) -> float:
    """Section 3.4: iterations ``<= log_{1/(1 - delta/536)} |E|``.

    Each matching iteration removes at least ``delta |E| / 536`` edges.
    """
    if m <= 1:
        return 1.0
    rate = 1.0 - delta / 536.0
    return math.log(m) / -math.log(rate)


def mis_iteration_bound(m: int, delta: float) -> float:
    """Section 4.4: iterations ``<= log_{1/(1 - delta^2/400)} |E|``."""
    if m <= 1:
        return 1.0
    rate = 1.0 - delta * delta / 400.0
    return math.log(m) / -math.log(rate)


def lowdeg_round_bound(
    n: int, max_degree: int, c_stage: float = 4.0, c_pre: float = 4.0
) -> float:
    """Theorem 1 shape: ``c_stage * log Delta + c_pre * log log n`` rounds."""
    d = max(max_degree, 2)
    nn = max(n, 4)
    return c_stage * math.log2(d) + c_pre * math.log2(math.log2(nn))


def per_machine_space(n: int, eps: float, factor: float = 32.0) -> int:
    """``S = factor * n^eps`` words (Theorems 7/14)."""
    return max(4, math.ceil(factor * max(n, 2) ** eps))


def total_space_bound(n: int, m: int, eps: float, factor: float = 16.0) -> int:
    """``O(m + n^{1+eps})`` total words."""
    return math.ceil(factor * (m + max(n, 2) ** (1.0 + eps)))


def seed_bits_ids(n: int) -> int:
    """Pairwise seed over ids: ``2 ceil(log2 q)``, ``q = Theta(n)``."""
    return 2 * max(1, math.ceil(math.log2(max(n, 2))))


def seed_bits_colors(num_colors: int) -> int:
    """Section-5 seed over colors: ``2 ceil(log2 q*)``, ``q* = Theta(C)``."""
    return 2 * max(1, math.ceil(math.log2(max(num_colors, 2))))
