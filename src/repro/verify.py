"""Solution checkers: independence, maximality, matching validity.

These are the ground-truth oracles for the whole test suite.  They are
deliberately written against the raw definitions (Section 2 of the paper)
rather than reusing any algorithm code, and the networkx cross-checks give a
fully independent second implementation.
"""

from __future__ import annotations

import numpy as np

from .graphs.graph import Graph

__all__ = [
    "is_independent_set",
    "is_matching",
    "is_maximal_independent_set",
    "is_maximal_matching",
    "verify_matching_pairs",
    "verify_mis_nodes",
]


def is_independent_set(g: Graph, node_mask: np.ndarray) -> bool:
    """No edge of ``g`` has both endpoints selected."""
    mask = np.asarray(node_mask, dtype=bool)
    if mask.shape != (g.n,):
        raise ValueError("node_mask must have shape (n,)")
    if g.m == 0:
        return True
    return not bool(np.any(mask[g.edges_u] & mask[g.edges_v]))


def is_maximal_independent_set(g: Graph, node_mask: np.ndarray) -> bool:
    """Independent and not extendable: every unselected node has a selected
    neighbour."""
    mask = np.asarray(node_mask, dtype=bool)
    if not is_independent_set(g, mask):
        return False
    dominated = g.degrees_toward(mask) > 0
    return bool(np.all(mask | dominated))


def is_matching(g: Graph, edge_mask: np.ndarray) -> bool:
    """No two selected edges share an endpoint."""
    mask = np.asarray(edge_mask, dtype=bool)
    if mask.shape != (g.m,):
        raise ValueError("edge_mask must have shape (m,)")
    used = np.zeros(g.n, dtype=np.int64)
    np.add.at(used, g.edges_u[mask], 1)
    np.add.at(used, g.edges_v[mask], 1)
    return bool(np.all(used <= 1))


def is_maximal_matching(g: Graph, edge_mask: np.ndarray) -> bool:
    """A matching such that every edge touches a matched node."""
    mask = np.asarray(edge_mask, dtype=bool)
    if not is_matching(g, mask):
        return False
    saturated = np.zeros(g.n, dtype=bool)
    saturated[g.edges_u[mask]] = True
    saturated[g.edges_v[mask]] = True
    if g.m == 0:
        return True
    return bool(np.all(saturated[g.edges_u] | saturated[g.edges_v]))


def verify_matching_pairs(g: Graph, pairs: np.ndarray) -> bool:
    """Validate an (k, 2) endpoint-pair matching against ``g``:
    every pair is an edge, pairwise disjoint, and maximal."""
    pairs = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
    # Every pair must be an actual edge.
    edge_set = {
        (int(a), int(b)) for a, b in zip(g.edges_u.tolist(), g.edges_v.tolist())
    }
    for a, b in pairs.tolist():
        lo, hi = (a, b) if a < b else (b, a)
        if (lo, hi) not in edge_set:
            return False
    # Disjointness.
    flat = pairs.ravel()
    if np.unique(flat).size != flat.size:
        return False
    # Maximality: every edge touches a matched node.
    saturated = np.zeros(g.n, dtype=bool)
    if flat.size:
        saturated[flat] = True
    if g.m and not np.all(saturated[g.edges_u] | saturated[g.edges_v]):
        return False
    return True


def verify_mis_nodes(g: Graph, nodes: np.ndarray) -> bool:
    """Validate a node-id array as a maximal independent set of ``g``."""
    nodes = np.asarray(nodes, dtype=np.int64)
    mask = np.zeros(g.n, dtype=bool)
    if nodes.size:
        if nodes.min() < 0 or nodes.max() >= g.n:
            return False
        mask[nodes] = True
    return is_maximal_independent_set(g, mask)
