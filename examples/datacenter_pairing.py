#!/usr/bin/env python3
"""Scenario: pairing replica servers for bulk data exchange.

A maximal-matching workload: vertices are servers, edges are candidate
replication pairs (e.g., rack-adjacent machines holding shards of the same
dataset), and in each synchronisation wave every server talks to at most one
partner -- a matching.  Maximality means no eligible pair sits idle.  The
heavy-tailed pair graph (a few aggregation servers are eligible with very
many partners) exercises the paper's degree-class machinery: the hubs land
in high classes C_i and the edge-sparsification stages do real work.

The example also contrasts the deterministic algorithm with the randomized
Israeli-Itai baseline: same maximality guarantee, but reproducible wave
plans.

Run:  python examples/datacenter_pairing.py
"""

import numpy as np

from repro.baselines import israeli_itai_matching
from repro.core import Params, deterministic_maximal_matching
from repro.graphs import power_law_graph
from repro.verify import verify_matching_pairs


def main() -> None:
    g = power_law_graph(n=800, attach=5, seed=33)
    deg = g.degrees()
    print(
        f"pair graph: {g}; hub degree {deg.max()}, "
        f"median degree {int(np.median(deg))}"
    )

    params = Params(eps=0.5)
    det = deterministic_maximal_matching(g, params)
    assert verify_matching_pairs(g, det.pairs)
    print(
        f"\ndeterministic wave plan: {det.pairs.shape[0]} pairs, "
        f"{det.iterations} iterations, {det.rounds} charged MPC rounds"
    )

    # Show the sparsification at work: iterations that hit high degree
    # classes ran i - 4 subsampling stages.
    staged = [rec for rec in det.records if rec.stages]
    if staged:
        rec = staged[0]
        print(
            f"  iteration {rec.iteration}: degree class i*={rec.i_star}, "
            f"{len(rec.stages)} sparsification stages, "
            f"E0 {rec.stages[0].items_before} -> E* {rec.stages[-1].items_after} edges"
        )

    rnd = israeli_itai_matching(g, seed=0)
    assert verify_matching_pairs(g, rnd.solution)
    print(
        f"\nIsraeli-Itai baseline: {rnd.solution.shape[0]} pairs, "
        f"{rnd.iterations} iterations (randomized -- plan changes per seed)"
    )

    # Matching sizes are comparable (both maximal => within factor 2 of
    # maximum, hence within factor 2 of each other).
    ratio = det.pairs.shape[0] / max(rnd.solution.shape[0], 1)
    print(f"\nplan size ratio deterministic/randomized: {ratio:.2f}")
    assert 0.5 <= ratio <= 2.0


if __name__ == "__main__":
    main()
