#!/usr/bin/env python3
"""Scenario: interference-free transmission scheduling on a radio network.

A classic MIS application (and the kind of workload the paper's introduction
motivates): nodes are radio transmitters, edges are interference pairs, and
a set of transmitters may broadcast simultaneously iff it is independent.
Repeatedly extracting an MIS and removing it yields an interference-free
*schedule* (a partition into rounds); using the deterministic algorithm
makes the schedule reproducible across re-runs -- no coordination or shared
randomness needed between data centers computing it.

The topology is a bounded-degree random geometric-ish graph, squarely in the
Section-5 regime, so each MIS extraction costs O(log Delta + log log n)
charged MPC rounds.

Run:  python examples/wireless_scheduling.py
"""

import numpy as np

from repro import maximal_independent_set
from repro.graphs import Graph, bounded_degree_graph
from repro.verify import is_independent_set


def build_schedule(g: Graph, max_slots: int = 64) -> list[np.ndarray]:
    """Partition all transmitters into interference-free slots."""
    slots: list[np.ndarray] = []
    remaining = g
    alive = np.ones(g.n, dtype=bool)
    total_rounds = 0
    while alive.any():
        if len(slots) >= max_slots:
            raise RuntimeError("degree too high for the slot budget")
        res = maximal_independent_set(remaining)
        total_rounds += res.rounds
        chosen = np.asarray(
            [v for v in res.independent_set if alive[v]], dtype=np.int64
        )
        assert is_independent_set(g, _mask(g.n, chosen))
        slots.append(chosen)
        alive[chosen] = False
        remaining = remaining.remove_vertices(~alive | _mask(g.n, chosen))
        # Nodes already scheduled are isolated; restrict future MIS runs to
        # the still-alive induced subgraph.
        keep = np.zeros(remaining.m, dtype=bool) if remaining.m else np.zeros(0, bool)
        del keep  # remove_vertices already dropped their edges
    print(f"total charged MPC rounds across all slots: {total_rounds}")
    return slots


def _mask(n: int, ids: np.ndarray) -> np.ndarray:
    m = np.zeros(n, dtype=bool)
    if ids.size:
        m[ids] = True
    return m


def main() -> None:
    g = bounded_degree_graph(n=600, max_deg=6, p_fill=0.9, seed=21)
    print(f"radio network: {g}")

    slots = build_schedule(g)
    sizes = [len(s) for s in slots]
    print(f"schedule: {len(slots)} slots, sizes {sizes}")

    # Sanity: every transmitter scheduled exactly once, every slot
    # interference-free (checked inside build_schedule).
    scheduled = np.concatenate(slots)
    assert np.array_equal(np.sort(scheduled), np.arange(g.n))
    # A maximal-independent-set schedule uses at most Delta + 1 slots.
    assert len(slots) <= g.max_degree() + 1
    print(
        f"all {g.n} transmitters scheduled in {len(slots)} slots "
        f"(<= Delta + 1 = {g.max_degree() + 1})"
    )


if __name__ == "__main__":
    main()
