#!/usr/bin/env python3
"""Scenario: CONGESTED CLIQUE MIS and the Corollary-2 round separation.

Runs the deterministic CC MIS twice on the same input -- once with the
paper's O(log Delta) accounting (O(1) rounds per phase thanks to 2-hop
information, plus a Lenzen collection of the <= n-edge remainder) and once
with the Censor-Hillel-et-al.-style bit-by-bit voting accounting
(O(log n) rounds per phase).  The measured ratio is the paper's improvement.

Run:  python examples/congested_clique_demo.py
"""

from repro.cclique import cc_maximal_matching, cc_mis
from repro.graphs import gnp_random_graph
from repro.verify import verify_matching_pairs, verify_mis_nodes


def main() -> None:
    g = gnp_random_graph(n=400, p=0.15, seed=55)
    print(f"input: {g} (Delta = {g.max_degree()})\n")

    ours = cc_mis(g, charge_mode="ours")
    chps = cc_mis(g, charge_mode="chps")
    assert verify_mis_nodes(g, ours.solution)
    assert (ours.solution == chps.solution).all()  # same algorithm, same MIS

    print("MIS in CONGESTED CLIQUE:")
    print(f"  phases until |E| <= n: {ours.phases}; remainder collected: "
          f"{ours.collected_remainder_edges} edges (Lenzen, O(1) rounds)")
    print(f"  ours  (Cor. 2, O(log Delta)):      {ours.rounds} rounds")
    print(f"  CHPS-style voting (O(log D log n)): {chps.rounds} rounds")
    print(f"  separation: {chps.rounds / ours.rounds:.1f}x\n")

    mm = cc_maximal_matching(g, charge_mode="ours")
    assert verify_matching_pairs(g, mm.solution)
    print(
        f"maximal matching in CONGESTED CLIQUE: {mm.solution.shape[0]} edges, "
        f"{mm.phases} phases, {mm.rounds} rounds"
    )


if __name__ == "__main__":
    main()
