#!/usr/bin/env python3
"""Quickstart: deterministic MIS and maximal matching in low-space MPC.

Builds a random graph, runs the paper's two deterministic algorithms through
the public API (which dispatches between the general O(log n) path and the
Section-5 O(log Delta + log log n) path), verifies the outputs, and prints
the MPC cost accounting.

Run:  python examples/quickstart.py
"""

from repro import (
    gnp_random_graph,
    maximal_independent_set,
    maximal_matching,
    verify_matching_pairs,
    verify_mis_nodes,
)


def main() -> None:
    g = gnp_random_graph(n=500, p=0.02, seed=7)
    print(f"input: {g}")

    mis = maximal_independent_set(g, eps=0.5)
    assert verify_mis_nodes(g, mis.independent_set), "MIS must verify"
    print(
        f"\nMIS: {len(mis.independent_set)} nodes, "
        f"{mis.iterations} Luby iterations, {mis.rounds} charged MPC rounds"
    )
    print(f"  rounds by category: {dict(mis.rounds_by_category)}")
    print(f"  machine space high-water: {mis.max_machine_words}/{mis.space_limit} words")

    mm = maximal_matching(g, eps=0.5)
    assert verify_matching_pairs(g, mm.pairs), "matching must verify"
    print(
        f"\nmaximal matching: {mm.pairs.shape[0]} edges, "
        f"{mm.iterations} iterations, {mm.rounds} charged MPC rounds"
    )

    # Determinism: identical reruns, bit for bit.
    again = maximal_independent_set(g, eps=0.5)
    assert (again.independent_set == mis.independent_set).all()
    print("\nrerun produced the identical MIS -- fully deterministic.")


if __name__ == "__main__":
    main()
