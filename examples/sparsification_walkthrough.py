#!/usr/bin/env python3
"""Walkthrough: the deterministic sparsification pipeline, stage by stage.

Traces one outer iteration of the matching algorithm on a dense graph:

1. good-node selection (sets X, degree classes C_i, chosen class B);
2. the i - 4 derandomized subsampling stages with their invariant
   measurements (Lemmas 10/11);
3. the final derandomized Luby step on E* (Lemma 13).

Useful for understanding *why* the algorithm is O(1) rounds per iteration:
every step prints what a machine-level implementation would charge.

Run:  python examples/sparsification_walkthrough.py
"""

import numpy as np

from repro.core import (
    Params,
    good_nodes_matching,
    luby_matching_step,
    sparsify_edges,
)
from repro.graphs import gnp_random_graph
from repro.mpc import MPCContext


def main() -> None:
    params = Params(eps=0.5)
    g = gnp_random_graph(n=300, p=0.3, seed=13)
    print(f"input: {g}, delta = {params.delta_value}")
    print(f"degree classes: C_i = [n^((i-1)/16), n^(i/16)), i = 1..16\n")

    # -- step 1: good nodes -------------------------------------------- #
    good = good_nodes_matching(g, params)
    deg = g.degrees()
    print("step 1 -- good nodes (Lemma 3 / Corollary 8):")
    print(f"  |X| = {int(good.x_mask.sum())} nodes, weight(X) = {int(deg[good.x_mask].sum())} >= m/2 = {g.m // 2}")
    print(f"  chosen class i* = {good.i_star}, |B| = {good.num_good}")
    print(f"  weight(B) = {good.weight_b:.0f} >= (delta/2) m = {params.delta_value / 2 * g.m:.0f}")
    print(f"  |E0| = {int(good.e0_mask.sum())} candidate edges\n")

    # -- step 2: sparsification stages --------------------------------- #
    ctx = MPCContext(n=g.n, m=g.m, eps=params.eps, space_factor=params.space_factor)
    fidelity: list[str] = []
    spars = sparsify_edges(g, good, params, ctx, fidelity)
    print(f"step 2 -- sparsification ({spars.num_stages} stages, rate n^-delta = {params.sample_prob(g.n):.3f}):")
    for s in spars.stages:
        print(
            f"  stage {s.stage}: |E| {s.items_before} -> {s.items_after} "
            f"(ideal decay {s.degree_decay_ideal:.3f}, measured {s.degree_decay_measured:.3f}); "
            f"{s.num_machines} machines of <= {s.max_load} edges; "
            f"seed {s.seed} found in {s.trials} scans; all good = {s.all_good}"
        )
    d_star = g.degrees_within(spars.e_star_mask)
    print(
        f"  => max degree in E*: {int(d_star.max())} "
        f"(cap 2 n^(4 delta) = {params.degree_cap(g.n):.1f}); "
        f"2-hop neighbourhoods now fit machines of S = {ctx.S} words\n"
    )

    # -- step 3: Luby selection ----------------------------------------- #
    eids, info = luby_matching_step(g, spars.e_star_mask, good, params, ctx, fidelity)
    covered = np.unique(np.concatenate([g.edges_u[eids], g.edges_v[eids]]))
    print("step 3 -- derandomized Luby step (Lemma 13):")
    print(f"  matching of {eids.size} edges found with seed {info.selection.seed} ({info.seed_bits}-bit)")
    print(f"  objective {info.selection.value:.0f} >= target {info.target:.1f} (W_B/109)")
    print(f"  removing {covered.size} matched nodes deletes >= delta m / 536 edges\n")

    print(f"charged MPC rounds for this whole iteration: {ctx.rounds}")
    print(f"rounds by category: {dict(ctx.ledger.by_category)}")
    if fidelity:
        print(f"fidelity events: {fidelity}")


if __name__ == "__main__":
    main()
