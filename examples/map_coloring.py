#!/usr/bin/env python3
"""Scenario: register/frequency assignment via deterministic (Δ+1)-coloring.

The classical downstream use of MIS (Luby's original motivation): color a
conflict graph with Δ+1 colors by computing an MIS of the product graph
G x K_{Δ+1}.  Frequencies for radio cells, registers for interfering
variables, time slots for conflicting jobs -- same abstraction.  The
deterministic pipeline means the assignment is reproducible: re-planning
after a crash yields the identical frequency plan.

Run:  python examples/map_coloring.py
"""

import numpy as np

from repro.core import deterministic_coloring
from repro.graphs import grid_graph


def main() -> None:
    # A 12x12 cellular grid: cells interfere with their lattice neighbours.
    g = grid_graph(12, 12)
    print(f"conflict graph: {g} (Delta = {g.max_degree()})")

    res = deterministic_coloring(g)
    used = len(set(res.colors.tolist()))
    print(
        f"\nassigned {used} frequencies (palette {res.num_colors} = Delta + 1) "
        f"via MIS on a product graph of {res.product_n} nodes / "
        f"{res.product_m} edges"
    )
    print(f"charged MPC rounds: {res.rounds}")

    # Validate: no interfering pair shares a frequency.
    clashes = int(np.sum(res.colors[g.edges_u] == res.colors[g.edges_v]))
    assert clashes == 0
    print("no interference clashes -- assignment is proper")

    # Render the grid's coloring as ASCII art.
    grid = res.colors.reshape(12, 12)
    print("\nfrequency map:")
    for row in grid:
        print("  " + " ".join(str(int(c)) for c in row))

    again = deterministic_coloring(g)
    assert np.array_equal(again.colors, res.colors)
    print("\nre-planning reproduced the identical map -- deterministic.")


if __name__ == "__main__":
    main()
